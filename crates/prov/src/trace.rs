//! Workflow execution traces.
//!
//! A workflow execution `e = d₀.c₁.d₁.c₂…cₙ.dₙ` (Definition 2) is recorded
//! as the final document plus, per service call, the state marks before and
//! after the call and the resources it produced. Together with the resource
//! labels stamped on the document this is exactly the paper's *execution
//! trace*: "the final XML document and the Source table".

use weblab_obs::Counter;
use weblab_xml::{CallLabel, Document, NodeId, StateMark, Timestamp};

/// Full O(trace) channel-map builds performed by
/// [`ExecutionTrace::channel_map`]. The live maintainer avoids these by
/// updating its map incrementally per delta; the perf-regression suite
/// asserts a live run performs at most one build per execution while the
/// naive per-delta loop performs one per call.
static CHANNEL_MAP_BUILDS: Counter = Counter::new("prov.trace.channel_map.builds");

/// Record of one service call `c_i = (s, t_i)` within an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRecord {
    /// Service name `s`.
    pub service: String,
    /// Call instant `t_i` (strictly increasing along the control flow).
    pub time: Timestamp,
    /// State mark of the input document `d_{i-1}` (`in(c_i)`).
    pub input: StateMark,
    /// State mark of the output document `d_i`.
    pub output: StateMark,
    /// Resource nodes produced by the call (`out(c_i)`), i.e. resources
    /// registered between `input` and `output`, minus promotions of
    /// pre-existing nodes credited to earlier calls.
    pub produced: Vec<NodeId>,
    /// Control-flow channel of the call (Section 8 extension for parallel
    /// executions): a `.`-separated path of branch indices, `""` for the
    /// sequential main flow. A call can only have used resources produced
    /// on a channel that is an ancestor or descendant of its own — sibling
    /// branches are mutually invisible regardless of timestamps.
    pub channel: String,
}

impl CallRecord {
    /// The call's label `(s, t_i)`.
    pub fn label(&self) -> CallLabel {
        CallLabel::new(self.service.clone(), self.time)
    }
}

/// Are two control-flow channels mutually visible? True iff one is a
/// (segment-wise) prefix of the other; sibling branches are not.
pub fn channels_compatible(a: &str, b: &str) -> bool {
    if a.is_empty() || b.is_empty() {
        return true;
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    long.starts_with(short)
        && (long.len() == short.len() || long.as_bytes()[short.len()] == b'.')
}

/// The trace of one workflow execution over one document.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    /// Calls in control-flow order (`c₁ … cₙ`).
    pub calls: Vec<CallRecord>,
}

impl ExecutionTrace {
    /// Record a call, computing `out(c_i)` from the document's resource log
    /// between the two marks, restricted to resources actually labelled
    /// with this call (promotions of old content keep their original
    /// label — node 3 of Figure 4 is credited to `(Source, t₀)`, not to the
    /// Normaliser call that registered it).
    pub fn record_call(
        &mut self,
        doc: &Document,
        service: impl Into<String>,
        time: Timestamp,
        input: StateMark,
        output: StateMark,
    ) {
        self.record_call_on_channel(doc, service, time, input, output, "");
    }

    /// Like [`ExecutionTrace::record_call`] for a call executed on a
    /// parallel control-flow channel (Section 8 extension).
    pub fn record_call_on_channel(
        &mut self,
        doc: &Document,
        service: impl Into<String>,
        time: Timestamp,
        input: StateMark,
        output: StateMark,
        channel: impl Into<String>,
    ) {
        let service = service.into();
        let produced = doc
            .new_resources_since(input)
            .into_iter()
            .filter(|n| {
                doc.resource(*n)
                    .and_then(|m| m.label.as_ref())
                    .map(|l| l.service == service && l.time == time)
                    .unwrap_or(false)
            })
            .collect();
        self.calls.push(CallRecord {
            service,
            time,
            input,
            output,
            produced,
            channel: channel.into(),
        });
    }

    /// Whether any call ran on a non-root channel (i.e. the execution
    /// contained parallel branches).
    pub fn has_parallel_channels(&self) -> bool {
        self.calls.iter().any(|c| !c.channel.is_empty())
    }

    /// Map from produced resource node to its channel, for visibility
    /// filtering during inference.
    pub fn channel_map(&self) -> std::collections::HashMap<NodeId, String> {
        CHANNEL_MAP_BUILDS.inc();
        let mut m = std::collections::HashMap::new();
        for c in &self.calls {
            if c.channel.is_empty() {
                continue;
            }
            for &n in &c.produced {
                m.insert(n, c.channel.clone());
            }
        }
        m
    }

    /// Reconstruct a trace from the resource labels of a final document —
    /// the labels *are* the Source table of Figure 2, so for the posthoc
    /// strategies (which only consult `(service, time)` per call and the
    /// final state) a standalone stamped document is a complete execution
    /// record.
    ///
    /// Calls are derived as the distinct labels with `time > 0` (instant 0
    /// is reserved for acquisition sources), ordered by instant; every
    /// call's state marks are set to the final state, so the
    /// reconstruction is exact for `TemporalRewrite` and
    /// `GroupedSinglePass` but NOT for `StateReplay` (which needs true
    /// intermediate marks). Channels cannot be recovered and default to
    /// the root channel.
    pub fn reconstruct_from(doc: &Document) -> ExecutionTrace {
        let final_mark = doc.mark();
        let mut by_call: std::collections::BTreeMap<(Timestamp, String), Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for &n in doc.resource_nodes() {
            let Some(label) = doc.resource(n).and_then(|m| m.label.clone()) else {
                continue;
            };
            if label.time == 0 {
                continue;
            }
            by_call
                .entry((label.time, label.service))
                .or_default()
                .push(n);
        }
        ExecutionTrace {
            calls: by_call
                .into_iter()
                .map(|((time, service), produced)| CallRecord {
                    service,
                    time,
                    input: final_mark,
                    output: final_mark,
                    produced,
                    channel: String::new(),
                })
                .collect(),
        }
    }

    /// The call that happened at instant `t`, if any.
    pub fn call_at(&self, t: Timestamp) -> Option<&CallRecord> {
        self.calls.iter().find(|c| c.time == t)
    }

    /// Number of recorded calls `n`.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether no calls were recorded.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_xml::CallLabel;

    #[test]
    fn record_call_computes_out() {
        let mut d = Document::new("R");
        let root = d.root();
        d.register_resource(root, "r1", None).unwrap();
        let d0 = d.mark();

        // call (S, 1) produces rA; also promotes an older node with an
        // earlier label, which must NOT count as out(c)
        let old = d.append_element(root, "Old").unwrap();
        let _ = old; // created within the call but labelled (Source, 0)
        d.register_resource(old, "rOld", Some(CallLabel::new("Source", 0)))
            .unwrap();
        let a = d.append_element(root, "A").unwrap();
        d.register_resource(a, "rA", Some(CallLabel::new("S", 1)))
            .unwrap();
        let d1 = d.mark();

        let mut trace = ExecutionTrace::default();
        trace.record_call(&d, "S", 1, d0, d1);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.calls[0].produced, vec![a]);
        assert_eq!(trace.calls[0].channel, "");
        assert_eq!(trace.call_at(1).unwrap().service, "S");
        assert!(trace.call_at(7).is_none());
        assert!(!trace.has_parallel_channels());
    }

    #[test]
    fn reconstruction_matches_recorded_trace_for_posthoc_strategies() {
        let (doc, recorded, rules) = crate::paper_example::build();
        let reconstructed = ExecutionTrace::reconstruct_from(&doc);
        // same calls in the same order
        let calls = |t: &ExecutionTrace| -> Vec<(String, Timestamp, Vec<NodeId>)> {
            t.calls
                .iter()
                .map(|c| (c.service.clone(), c.time, c.produced.clone()))
                .collect()
        };
        assert_eq!(calls(&recorded), calls(&reconstructed));
        // and posthoc inference agrees
        let opts = crate::engine::EngineOptions::default();
        let a = crate::engine::infer_provenance(&doc, &recorded, &rules, &opts);
        let b = crate::engine::infer_provenance(&doc, &reconstructed, &rules, &opts);
        assert_eq!(a.links, b.links);
    }

    #[test]
    fn channel_compatibility_rules() {
        use super::channels_compatible;
        assert!(channels_compatible("", ""));
        assert!(channels_compatible("", "0"));
        assert!(channels_compatible("0", ""));
        assert!(channels_compatible("0", "0.1"));
        assert!(channels_compatible("0.1", "0"));
        assert!(!channels_compatible("0", "1"));
        assert!(!channels_compatible("0.1", "0.2"));
        assert!(!channels_compatible("0.1", "1.1"));
        // "10" is not a segment-extension of "1"
        assert!(!channels_compatible("1", "10"));
        assert!(channels_compatible("1", "1.0"));
    }

    #[test]
    fn channel_map_covers_parallel_produced_nodes() {
        let mut d = Document::new("R");
        let root = d.root();
        let d0 = d.mark();
        let a = d.append_element(root, "A").unwrap();
        d.register_resource(a, "ra", Some(CallLabel::new("S", 1))).unwrap();
        let d1 = d.mark();
        let mut trace = ExecutionTrace::default();
        trace.record_call_on_channel(&d, "S", 1, d0, d1, "0");
        assert!(trace.has_parallel_channels());
        let m = trace.channel_map();
        assert_eq!(m.get(&a).map(String::as_str), Some("0"));
    }
}
