//! The shared provenance query dispatch — one enum for every asker.
//!
//! Before the query service existed, the CLI (`weblab why`, `weblab
//! query`) and the platform each kept their own string-to-behaviour
//! matching. [`ProvQuery`] is the single source of truth both now parse
//! into: the serve protocol's `op` strings, the CLI subcommands and the
//! `ExecutionHandle` API all dispatch through it, and [`QueryAnswer`] is
//! the common result shape they render.
//!
//! This is **protocol v2** ([`PROTOCOL_VERSION`]): alongside the exact
//! queries of v1 it carries the ranked analytics ops — [`ProvQuery::Rank`]
//! (spreading activation under the shared [`QueryOpts`] envelope) and
//! [`ProvQuery::Summary`] (traversal-free aggregate views). Serve
//! responses stamp `"v": 2` next to the epoch so clients can detect the
//! new answer shapes.

use weblab_prov::query::{self, WhyProvenance};
use weblab_prov::{rank, EpochSnapshot, GraphSummary, ProvenanceGraph, RankedEntry, ReachabilityIndex};
use weblab_rdf::{export_prov, parse_select, select, QueryEngine, Solution, SparqlError, TripleStore};

pub use weblab_prov::{QueryOpts, RankDirection};

/// The query-surface protocol version stamped on every serve response.
pub const PROTOCOL_VERSION: u64 = 2;

/// A structured provenance question about one execution's graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvQuery {
    /// Why-provenance: the justifying subgraph of a resource.
    Why {
        /// The queried resource URI.
        uri: String,
    },
    /// Upstream lineage limited to a hop depth.
    Lineage {
        /// The queried resource URI.
        uri: String,
        /// Maximum hop distance (0 = just the root).
        depth: usize,
    },
    /// Impact analysis: everything transitively depending on a resource.
    ImpactedBy {
        /// The queried resource URI.
        uri: String,
    },
    /// Shared evidence of two resources.
    CommonOrigins {
        /// First resource URI.
        a: String,
        /// Second resource URI.
        b: String,
    },
    /// A SPARQL SELECT over the execution's PROV-O export.
    Sparql {
        /// The SELECT query text.
        query: String,
    },
    /// Ranked relevance: spreading activation from the seed resources
    /// (v2). See [`weblab_prov::rank`] for the scoring model.
    Rank {
        /// Seed resource URIs (activation 1.0 at hop 0).
        uris: Vec<String>,
        /// Propagation direction: up = ranked impact, down = ranked lineage.
        direction: RankDirection,
        /// The shared limit/budget/decay envelope.
        opts: QueryOpts,
        /// Per-service edge weights in micro-units, `(service, weight)`.
        weights: Vec<(String, u32)>,
    },
    /// Aggregate analytics from index statistics (v2): per-service
    /// influence, common-origin clusters, optional blast radius.
    Summary {
        /// Resource to estimate a blast radius for, if any.
        uri: Option<String>,
    },
}

/// The answer to a [`ProvQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryAnswer {
    /// Answer to [`ProvQuery::Why`].
    Why(WhyProvenance),
    /// Answer to [`ProvQuery::Lineage`]: `(resource, hop distance)` pairs.
    Lineage(Vec<(String, usize)>),
    /// Answer to [`ProvQuery::ImpactedBy`], in breadth-first order.
    ImpactedBy(Vec<String>),
    /// Answer to [`ProvQuery::CommonOrigins`], sorted.
    CommonOrigins(Vec<String>),
    /// Answer to [`ProvQuery::Sparql`].
    Solutions(Vec<Solution>),
    /// Answer to [`ProvQuery::Rank`]: scored entries, best first.
    Ranked(Vec<RankedEntry>),
    /// Answer to [`ProvQuery::Summary`].
    Summary(GraphSummary),
}

impl ProvQuery {
    /// The wire name of this query — the serve protocol's `op` string.
    pub fn op(&self) -> &'static str {
        match self {
            ProvQuery::Why { .. } => "why",
            ProvQuery::Lineage { .. } => "lineage",
            ProvQuery::ImpactedBy { .. } => "impacted-by",
            ProvQuery::CommonOrigins { .. } => "common-origins",
            ProvQuery::Sparql { .. } => "sparql",
            ProvQuery::Rank { .. } => "rank",
            ProvQuery::Summary { .. } => "summary",
        }
    }

    /// Answer against a materialised graph using the batch query functions
    /// (edge-list traversals) — the one-shot CLI path.
    pub fn answer_on_graph(&self, graph: &ProvenanceGraph) -> Result<QueryAnswer, SparqlError> {
        Ok(match self {
            ProvQuery::Why { uri } => QueryAnswer::Why(query::why(graph, uri)),
            ProvQuery::Lineage { uri, depth } => {
                QueryAnswer::Lineage(query::lineage_to_depth(graph, uri, *depth))
            }
            ProvQuery::ImpactedBy { uri } => {
                QueryAnswer::ImpactedBy(query::impacted_by(graph, uri))
            }
            ProvQuery::CommonOrigins { a, b } => {
                QueryAnswer::CommonOrigins(query::common_origins(graph, a, b))
            }
            ProvQuery::Sparql { query: text } => {
                let mut store = TripleStore::new();
                store.extend(export_prov(graph));
                let q = parse_select(text)?;
                QueryAnswer::Solutions(select(&store, &q))
            }
            // the one-shot path has no index yet: build one for this
            // question. Scores never depend on the build order, so the
            // answer is byte-identical to the serving path's.
            ProvQuery::Rank { uris, direction, opts, weights } => {
                let index = ReachabilityIndex::from_graph(graph);
                QueryAnswer::Ranked(rank::rank(&index, uris, *direction, opts, weights))
            }
            ProvQuery::Summary { uri } => {
                let index = ReachabilityIndex::from_graph(graph);
                QueryAnswer::Summary(rank::summary(&index, uri.as_deref()))
            }
        })
    }

    /// Answer against an epoch snapshot using its reachability index (no
    /// edge-list traversals) — the serving path. `store` is the PROV-O
    /// export of the snapshot's graph; pass `None` to have one built here
    /// (callers that serve many SPARQL queries per epoch should cache it).
    pub fn answer_on_snapshot(
        &self,
        snap: &EpochSnapshot,
        store: Option<&TripleStore>,
    ) -> Result<QueryAnswer, SparqlError> {
        Ok(match self {
            ProvQuery::Why { uri } => QueryAnswer::Why(snap.index.why(uri)),
            ProvQuery::Lineage { uri, depth } => {
                QueryAnswer::Lineage(snap.index.lineage(uri, *depth))
            }
            ProvQuery::ImpactedBy { uri } => {
                QueryAnswer::ImpactedBy(snap.index.impacted_by(uri))
            }
            ProvQuery::CommonOrigins { a, b } => {
                QueryAnswer::CommonOrigins(snap.index.common_origins(a, b))
            }
            ProvQuery::Sparql { query: text } => {
                let q = parse_select(text)?;
                let solutions = match store {
                    Some(store) => select(store, &q),
                    None => {
                        let mut fresh = TripleStore::new();
                        fresh.extend(export_prov(&snap.graph));
                        select(&fresh, &q)
                    }
                };
                QueryAnswer::Solutions(solutions)
            }
            ProvQuery::Rank { uris, direction, opts, weights } => {
                QueryAnswer::Ranked(rank::rank(&snap.index, uris, *direction, opts, weights))
            }
            ProvQuery::Summary { uri } => {
                QueryAnswer::Summary(rank::summary(&snap.index, uri.as_deref()))
            }
        })
    }

    /// Answer against an epoch snapshot with a [`QueryEngine`] over that
    /// epoch's PROV-O export — the serving path. SPARQL queries go through
    /// the engine's plan cache (each repeated query text is parsed and
    /// planned once per epoch); everything else answers from the
    /// snapshot's reachability index exactly like
    /// [`ProvQuery::answer_on_snapshot`].
    pub fn answer_on_engine(
        &self,
        snap: &EpochSnapshot,
        engine: &QueryEngine,
    ) -> Result<QueryAnswer, SparqlError> {
        match self {
            ProvQuery::Sparql { query: text } => Ok(QueryAnswer::Solutions(engine.select(text)?)),
            _ => self.answer_on_snapshot(snap, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_prov::{
        infer_provenance, paper_example, EngineOptions, InheritMode, ReachabilityIndex,
    };

    fn graph() -> ProvenanceGraph {
        let (doc, trace, rules) = paper_example::build();
        infer_provenance(
            &doc,
            &trace,
            &rules,
            &EngineOptions {
                inherit: InheritMode::PatternRewrite,
                ..Default::default()
            },
        )
    }

    fn snapshot(graph: &ProvenanceGraph) -> EpochSnapshot {
        EpochSnapshot {
            epoch: 1,
            calls: 3,
            graph: graph.clone(),
            index: ReachabilityIndex::from_graph(graph),
        }
    }

    #[test]
    fn snapshot_answers_equal_graph_answers_for_every_op() {
        let g = graph();
        let snap = snapshot(&g);
        let queries = [
            ProvQuery::Why { uri: "r8".into() },
            ProvQuery::Lineage { uri: "r8".into(), depth: 2 },
            ProvQuery::ImpactedBy { uri: "r3".into() },
            ProvQuery::CommonOrigins { a: "r8".into(), b: "r6".into() },
            ProvQuery::Sparql {
                query: format!(
                    "PREFIX prov: <{}> SELECT ?d ?s WHERE {{ ?d prov:wasDerivedFrom ?s . }}",
                    weblab_rdf::vocab::PROV_NS
                ),
            },
            ProvQuery::Rank {
                uris: vec!["r3".into()],
                direction: RankDirection::Up,
                opts: QueryOpts { limit: 5, budget: 8, decay_micro: 0 },
                weights: vec![("Translator".into(), 250_000)],
            },
            ProvQuery::Summary { uri: Some("r8".into()) },
        ];
        for q in &queries {
            assert_eq!(
                q.answer_on_snapshot(&snap, None).unwrap(),
                q.answer_on_graph(&g).unwrap(),
                "op {}",
                q.op()
            );
        }
    }

    #[test]
    fn sparql_parse_errors_surface_from_both_paths() {
        let g = graph();
        let snap = snapshot(&g);
        let q = ProvQuery::Sparql { query: "SELEKT nonsense".into() };
        assert!(q.answer_on_graph(&g).is_err());
        assert!(q.answer_on_snapshot(&snap, None).is_err());
    }

    #[test]
    fn op_names_are_the_wire_protocol() {
        assert_eq!(ProvQuery::Why { uri: String::new() }.op(), "why");
        assert_eq!(
            ProvQuery::CommonOrigins { a: String::new(), b: String::new() }.op(),
            "common-origins"
        );
        assert_eq!(
            ProvQuery::Rank {
                uris: Vec::new(),
                direction: RankDirection::Down,
                opts: QueryOpts::default(),
                weights: Vec::new(),
            }
            .op(),
            "rank"
        );
        assert_eq!(ProvQuery::Summary { uri: None }.op(), "summary");
        assert_eq!(PROTOCOL_VERSION, 2);
    }
}
