//! # weblab-platform — the Figure 5 architecture of WebLab PROV
//!
//! Assembles the reproduction's components into the three-part architecture
//! of the paper's Section 6:
//!
//! 1. **Recording** — [`Recorder`] captures every service call (in-process
//!    or as a serialised document exchange, with XML-diff based fragment
//!    identification), updates the [`ResourceRepository`] and writes the
//!    execution metadata into the [`TraceStore`] (whose RDF mirror makes
//!    traces SPARQL-queryable).
//! 2. **Graph construction** — the [`ServiceCatalog`] holds per-service
//!    endpoints, signatures and mapping rules; the [`Mapper`] combines
//!    catalog rules with the trace and the final document to materialise
//!    the provenance graph, through either the native engine or compiled
//!    XQuery.
//! 3. **Request management** — per-execution behaviour is grouped behind
//!    the [`ExecutionHandle`] façade ([`Platform::execution`]): batch
//!    materialisation checks the Provenance triple store for an
//!    already-materialised graph and invokes the Mapper on a miss, while
//!    structured queries ([`ProvQuery`]) answer from a published
//!    epoch/snapshot reachability index without re-walking edge lists.
//!
//! ```
//! use std::sync::Arc;
//! use weblab_platform::{Mapper, Platform};
//! use weblab_workflow::generator::generate_corpus;
//! use weblab_workflow::services::Normaliser;
//!
//! let p = Platform::new(Mapper::native());
//! p.register_service(
//!     Arc::new(Normaliser),
//!     &["//NativeContent[$x := @id] => //TextMediaUnit[@origin = $x]"],
//! ).unwrap();
//! let exec = p.execution("exec-1");
//! exec.ingest(generate_corpus(1, 1, 20));
//! exec.execute(&["Normaliser"]).unwrap();
//! let graph = exec.graph().unwrap();
//! assert!(!graph.links.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod mapper;
pub mod persist;
mod platform;
pub mod query;
mod recorder;
mod repository;
pub mod store;
mod trace_store;

pub use catalog::{CatalogError, ServiceCatalog, ServiceEntry};
pub use mapper::{Mapper, MapperError, MapperStrategy};
pub use platform::{
    ExecutionHandle, Platform, PlatformError, ReplayReport, SpecStep, WorkflowSpec,
};
pub use query::{ProvQuery, QueryAnswer, QueryOpts, RankDirection, PROTOCOL_VERSION};
pub use recorder::{merge_exchange, Recorder, RecorderError};
pub use repository::ResourceRepository;
pub use store::{ProvStore, StoredExecution};
pub use trace_store::TraceStore;
