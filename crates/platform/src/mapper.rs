//! The Mapper — materialising provenance graphs from execution traces.
//!
//! Figure 5's central component: "the Mapper materializes the request by
//! applying the corresponding mapping rules on the execution trace. It
//! collects all execution trace triples…, calls the Resource Repository
//! for obtaining the final resource…, obtains the mapping rules from the
//! Service Catalog. All these data and rules are then combined to construct
//! an XQuery expression for building the provenance graph."
//!
//! Both of the paper's computation paths are available: the native
//! pattern-join engine of `weblab-prov` (with any of its strategies) and
//! the compiled-XQuery pipeline of `weblab-xquery`.

use std::fmt;

use weblab_obs::Counter;
use weblab_prov::{
    infer_provenance, EngineOptions, ExecutionTrace, ProvenanceGraph, RuleSet,
};

/// Full provenance-graph materialisations performed by the Mapper.
static MATERIALIZATIONS: Counter = Counter::new("platform.mapper.materializations");
/// Incremental (`materialize_since`) requests served.
static INCREMENTAL_RUNS: Counter = Counter::new("platform.mapper.incremental_runs");
/// Links returned by incremental requests — the delta sizes.
static DELTA_LINKS: Counter = Counter::new("platform.mapper.delta_links");
use weblab_xml::Document;
use weblab_xquery::{infer_provenance_xquery, CompileError, XQueryStrategyOptions};

/// Which computation path the Mapper uses.
#[derive(Debug, Clone)]
pub enum MapperStrategy {
    /// Native pattern evaluation and algebraic join (Definition 8/9).
    Native(EngineOptions),
    /// Compile every rule to XQuery and evaluate on the final document
    /// (Section 6, Example 9).
    XQuery(XQueryStrategyOptions),
}

impl Default for MapperStrategy {
    fn default() -> Self {
        MapperStrategy::Native(EngineOptions::default())
    }
}

/// Mapper failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapperError {
    /// A rule could not be compiled to XQuery.
    Compile(CompileError),
}

impl fmt::Display for MapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapperError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MapperError {}

/// The Mapper component.
#[derive(Debug, Clone, Default)]
pub struct Mapper {
    /// Computation path.
    pub strategy: MapperStrategy,
}

impl Mapper {
    /// A mapper using the native engine with default options.
    pub fn native() -> Self {
        Mapper {
            strategy: MapperStrategy::Native(EngineOptions::default()),
        }
    }

    /// A mapper using compiled XQuery.
    pub fn xquery() -> Self {
        Mapper {
            strategy: MapperStrategy::XQuery(XQueryStrategyOptions::default()),
        }
    }

    /// Set the native engine's degree of parallelism. No effect on the
    /// XQuery path, which has no parallel executor.
    pub fn with_parallelism(mut self, parallelism: weblab_prov::Parallelism) -> Self {
        if let MapperStrategy::Native(opts) = &mut self.strategy {
            opts.parallelism = parallelism;
        }
        self
    }

    /// Materialise the provenance graph of one execution.
    pub fn materialize(
        &self,
        doc: &Document,
        trace: &ExecutionTrace,
        rules: &RuleSet,
    ) -> Result<ProvenanceGraph, MapperError> {
        MATERIALIZATIONS.inc();
        match &self.strategy {
            MapperStrategy::Native(opts) => Ok(infer_provenance(doc, trace, rules, opts)),
            MapperStrategy::XQuery(opts) => infer_provenance_xquery(doc, trace, rules, opts)
                .map_err(MapperError::Compile),
        }
    }

    /// Compute only the links contributed by `trace.calls[first_call..]` —
    /// the incremental path used by the Request Manager when new calls
    /// arrive after a graph was already materialised.
    pub fn materialize_since(
        &self,
        doc: &Document,
        trace: &ExecutionTrace,
        first_call: usize,
        rules: &RuleSet,
    ) -> Result<Vec<weblab_prov::ProvLink>, MapperError> {
        INCREMENTAL_RUNS.inc();
        let links = match &self.strategy {
            MapperStrategy::Native(opts) => Ok(weblab_prov::infer_links_since(
                doc, trace, first_call, rules, opts,
            )),
            MapperStrategy::XQuery(opts) => {
                let channel_map = trace.channel_map();
                let mut links = Vec::new();
                for call in &trace.calls[first_call.min(trace.calls.len())..] {
                    for rule in rules.rules_for(&call.service) {
                        let call_links =
                            weblab_xquery::xquery_call_provenance(rule, doc, call, opts)
                                .map_err(MapperError::Compile)?;
                        links.extend(weblab_prov::filter_links_by_channel(
                            &doc.view(),
                            call_links,
                            &call.channel,
                            &channel_map,
                        ));
                    }
                }
                links.sort();
                links.dedup();
                Ok(links)
            }
        };
        if let Ok(l) = &links {
            DELTA_LINKS.add(l.len() as u64);
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_prov::paper_example;

    #[test]
    fn native_and_xquery_mappers_agree_on_compilable_rules() {
        let (doc, trace, _) = paper_example::build();
        let mut rules = RuleSet::new();
        rules
            .add_parsed("LanguageExtractor", paper_example::M2)
            .unwrap();
        rules.add_parsed("Translator", paper_example::M3).unwrap();
        let native = Mapper::native().materialize(&doc, &trace, &rules).unwrap();
        let xquery = Mapper::xquery().materialize(&doc, &trace, &rules).unwrap();
        assert_eq!(native.links, xquery.links);
    }

    #[test]
    fn xquery_mapper_reports_compile_errors() {
        let (doc, trace, rules) = paper_example::build(); // M1 has a position predicate
        let err = Mapper::xquery().materialize(&doc, &trace, &rules).unwrap_err();
        assert!(matches!(err, MapperError::Compile(_)));
        // the native mapper handles the full rule language
        assert!(Mapper::native().materialize(&doc, &trace, &rules).is_ok());
    }
}
