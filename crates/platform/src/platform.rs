//! The assembled WebLab PROV platform (Figure 5) and its Request Manager.
//!
//! [`Platform`] wires the Recorder, Resource Repository, Execution Trace
//! store, Service Catalog, Mapper and Provenance triple store together.
//! Per-execution behaviour is exposed through [`Platform::execution`],
//! which returns an [`ExecutionHandle`] — the façade the CLI and the
//! `weblab serve` query service are written against. The handle answers
//! reachability queries from a published [`EpochSnapshot`] (an immutable
//! graph + [`ReachabilityIndex`] pair swapped in after every committed
//! live delta), so readers never block ingestion and never re-walk the
//! edge list.
//!
//! The original per-execution method sprawl (`provenance_graph`,
//! `dependencies_of`, …) is gone: the handle is the one query surface,
//! and with it the v2 protocol's ranked analytics
//! ([`ExecutionHandle::rank`], [`ExecutionHandle::summary`]).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use std::sync::{Mutex, RwLock};
use weblab_obs::{Counter, Gauge};
use weblab_prov::{
    dirty_cone, EngineOptions, EpochSnapshot, GraphSummary, LiveDelta, LiveProvenance,
    ProvenanceGraph, QueryOpts, RankDirection, RankedEntry, ReachabilityIndex,
};
use weblab_rdf::{export_prov_into, QueryEngine, Solution, SparqlError, TripleStore};
use weblab_workflow::{
    next_time, FaultPolicy, FragmentGrade, Orchestrator, ProofMode, Service, Workflow,
    WorkflowError,
};
use weblab_xml::Document;

use crate::catalog::{CatalogError, ServiceCatalog};
use crate::mapper::{Mapper, MapperError, MapperStrategy};
use crate::persist::PersistError;
use crate::query::{ProvQuery, QueryAnswer};
use crate::recorder::{Recorder, RecorderError};
use crate::repository::ResourceRepository;
use crate::store::ProvStore;
use crate::trace_store::TraceStore;

/// Executions evicted from residency to the attached store.
static EVICTIONS: Counter = Counter::new("store.evictions");
/// Executions currently resident in memory (store attached only).
static RESIDENT: Gauge = Gauge::new("store.resident");

/// Platform-level failure.
#[derive(Debug)]
pub enum PlatformError {
    /// Unknown execution id.
    UnknownExecution(String),
    /// A workflow step names a service with no registered implementation.
    UnknownService(String),
    /// Catalog manipulation failed.
    Catalog(CatalogError),
    /// A service call failed.
    Workflow(WorkflowError),
    /// Recording failed.
    Recorder(RecorderError),
    /// Provenance materialisation failed.
    Mapper(MapperError),
    /// A provenance query failed to parse.
    Sparql(SparqlError),
    /// The attached disk store failed to save or load an execution.
    Store(PersistError),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownExecution(e) => write!(f, "unknown execution {e:?}"),
            PlatformError::UnknownService(s) => write!(f, "no implementation for service {s:?}"),
            PlatformError::Catalog(e) => write!(f, "{e}"),
            PlatformError::Workflow(e) => write!(f, "{e}"),
            PlatformError::Recorder(e) => write!(f, "{e}"),
            PlatformError::Mapper(e) => write!(f, "{e}"),
            PlatformError::Sparql(e) => write!(f, "{e}"),
            PlatformError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<CatalogError> for PlatformError {
    fn from(e: CatalogError) -> Self {
        PlatformError::Catalog(e)
    }
}

impl From<WorkflowError> for PlatformError {
    fn from(e: WorkflowError) -> Self {
        PlatformError::Workflow(e)
    }
}

impl From<RecorderError> for PlatformError {
    fn from(e: RecorderError) -> Self {
        PlatformError::Recorder(e)
    }
}

impl From<MapperError> for PlatformError {
    fn from(e: MapperError) -> Self {
        PlatformError::Mapper(e)
    }
}

impl From<SparqlError> for PlatformError {
    fn from(e: SparqlError) -> Self {
        PlatformError::Sparql(e)
    }
}

impl From<PersistError> for PlatformError {
    fn from(e: PersistError) -> Self {
        PlatformError::Store(e)
    }
}

/// A declarative workflow specification over *registered service names*:
/// the platform resolves each name against its service registry and builds
/// the executable [`Workflow`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecStep {
    /// A single service call, by registered name.
    Service(String),
    /// A parallel block of branches (Section 8 extension).
    Parallel(Vec<WorkflowSpec>),
}

/// An ordered list of [`SpecStep`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkflowSpec {
    /// The steps.
    pub steps: Vec<SpecStep>,
}

impl WorkflowSpec {
    /// A sequential spec from service names.
    pub fn sequence(names: &[&str]) -> Self {
        WorkflowSpec {
            steps: names
                .iter()
                .map(|n| SpecStep::Service(n.to_string()))
                .collect(),
        }
    }

    /// Append a service step.
    pub fn then(mut self, name: impl Into<String>) -> Self {
        self.steps.push(SpecStep::Service(name.into()));
        self
    }

    /// Append a parallel block.
    pub fn then_parallel(mut self, branches: Vec<WorkflowSpec>) -> Self {
        self.steps.push(SpecStep::Parallel(branches));
        self
    }
}

/// Summary of a [`Platform::replay_execution`] run — the serve protocol's
/// `replay` response body.
#[derive(Debug)]
pub struct ReplayReport {
    /// Id the replayed execution was registered under.
    pub execution: String,
    /// Size of the dirty cone (changed URIs plus everything impacted).
    pub cone_size: usize,
    /// Prior calls reused via fragment splicing.
    pub reused: usize,
    /// Prior calls re-executed because their outputs sat in the cone.
    pub recomputed: usize,
    /// Fragments spliced forward from the prior document.
    pub splices: usize,
    /// Per-fragment verification grades (empty under [`ProofMode::Trusted`]).
    pub grades: Vec<FragmentGrade>,
}

/// The assembled platform.
pub struct Platform {
    repository: Arc<ResourceRepository>,
    traces: Arc<TraceStore>,
    recorder: Recorder,
    catalog: RwLock<ServiceCatalog>,
    services: RwLock<HashMap<String, Arc<dyn Service>>>,
    materialized: RwLock<HashMap<String, MaterializedGraph>>,
    mapper: Mapper,
    fault: RwLock<FaultPolicy>,
    /// Live provenance maintainers, per execution id, for executions where
    /// live mode was enabled. Each is shared with the call-completion hook
    /// of in-flight orchestrations.
    live: RwLock<HashMap<String, Arc<Mutex<LiveProvenance>>>>,
    /// Per-execution reachability index state backing [`ExecutionHandle`]
    /// queries and the `weblab serve` daemon.
    index_states: RwLock<HashMap<String, Arc<IndexState>>>,
    /// The attached disk store and its residency bookkeeping, when the
    /// platform runs disk-backed (`weblab serve --store`).
    store: RwLock<Option<Arc<StoreState>>>,
}

/// Disk-backed residency: the attached [`ProvStore`] plus the LRU
/// bookkeeping that bounds how many executions stay in memory at once.
struct StoreState {
    store: Arc<ProvStore>,
    /// Executions kept resident before eviction kicks in (at least 1).
    max_resident: usize,
    /// Resident execution ids, least-recently-used first.
    lru: Mutex<Vec<String>>,
    /// Serialises cold loads, so concurrent readers of one evicted
    /// execution trigger a single disk load between them.
    loading: Mutex<()>,
}

/// Cache entry: the graph as of a number of recorded calls.
#[derive(Clone)]
struct MaterializedGraph {
    calls: usize,
    graph: ProvenanceGraph,
}

/// The writer's side of one execution's reachability index: the mutable
/// master copy that live deltas fold into, plus the immutable published
/// [`EpochSnapshot`] that readers clone an `Arc` of (so queries run
/// lock-free, concurrently with ingestion).
struct MasterIndex {
    epoch: u64,
    calls: usize,
    graph: ProvenanceGraph,
    index: ReachabilityIndex,
}

/// Per-execution epoch/snapshot machinery. Lock order is always
/// *maintainer before master*: callers compute graphs (which may lock the
/// [`LiveProvenance`] mutex) before taking `master`, and the call hook
/// releases the maintainer before applying its delta here.
struct IndexState {
    master: Mutex<MasterIndex>,
    published: RwLock<Arc<EpochSnapshot>>,
    /// Epoch-keyed query engine over the published graph's PROV-O export,
    /// built lazily on the first SPARQL query of an epoch and shared by
    /// the rest — carrying the epoch's plan cache with it.
    engine: Mutex<Option<(u64, Arc<QueryEngine>)>>,
}

impl IndexState {
    fn new() -> Self {
        IndexState {
            master: Mutex::new(MasterIndex {
                epoch: 0,
                calls: 0,
                graph: ProvenanceGraph::default(),
                // `new` counts under `prov.index.builds`: one build per
                // execution index, maintained incrementally afterwards.
                index: ReachabilityIndex::new(),
            }),
            published: RwLock::new(Arc::new(EpochSnapshot::empty())),
            engine: Mutex::new(None),
        }
    }

    fn published(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.published.read().expect("lock poisoned"))
    }

    fn publish_locked(&self, m: &MasterIndex) -> Arc<EpochSnapshot> {
        let snap = Arc::new(EpochSnapshot {
            epoch: m.epoch,
            calls: m.calls,
            graph: m.graph.clone(),
            index: m.index.clone(),
        });
        *self.published.write().expect("lock poisoned") = Arc::clone(&snap);
        snap
    }

    /// Fold one committed live delta into the master index and publish the
    /// next epoch. No-op for an empty delta that advances nothing.
    fn apply_delta(&self, delta: &LiveDelta, calls: usize) {
        let mut m = self.master.lock().expect("lock poisoned");
        if delta.is_empty() && calls <= m.calls {
            return;
        }
        // A cold-loaded master already carries the stored sources; a live
        // catch-up delta may re-deliver them, so only genuinely new entries
        // are folded in (links dedup inside add_links).
        let fresh: Vec<_> = delta
            .sources
            .iter()
            .filter(|s| !m.graph.sources.contains(s))
            .cloned()
            .collect();
        m.index.add_sources(&fresh);
        m.index.add_links(&delta.links);
        m.graph.sources.extend(fresh);
        m.graph.add_links(delta.links.iter().cloned());
        m.calls = m.calls.max(calls);
        m.epoch += 1;
        self.publish_locked(&m);
    }

    /// Replace the master with a freshly materialised graph (rebuilding the
    /// index) and publish it — the refresh path for executions whose calls
    /// were recorded outside any live hook. Skipped if a concurrent
    /// [`IndexState::apply_delta`] already advanced past `calls`, so a
    /// slower full rebuild never rolls back a newer incremental epoch.
    fn publish_full(&self, graph: ProvenanceGraph, calls: usize) -> Arc<EpochSnapshot> {
        let index = ReachabilityIndex::from_graph(&graph);
        let mut m = self.master.lock().expect("lock poisoned");
        if m.epoch > 0 && m.calls >= calls {
            drop(m);
            return self.published();
        }
        m.graph = graph;
        m.index = index;
        m.calls = m.calls.max(calls);
        m.epoch += 1;
        self.publish_locked(&m)
    }

    /// Adopt a snapshot reloaded from the disk store, publishing the
    /// *exact* persisted epoch: serve responses embed the epoch, so a
    /// cold-loaded execution must answer with the same epoch number (and
    /// the same graph row order) it was saved at to stay byte-identical
    /// with the resident path. Skipped when the master already advanced at
    /// least as far — a restore never rolls an index back.
    fn restore(&self, graph: ProvenanceGraph, calls: usize, epoch: u64) {
        let index = ReachabilityIndex::from_graph(&graph);
        let mut m = self.master.lock().expect("lock poisoned");
        if m.epoch >= epoch && m.calls >= calls {
            return;
        }
        m.graph = graph;
        m.index = index;
        m.calls = calls;
        m.epoch = epoch;
        self.publish_locked(&m);
    }

    /// The query engine over a snapshot's PROV-O export, cached per epoch
    /// (a new epoch gets a fresh store, dictionary and plan cache).
    fn engine_for(&self, snap: &EpochSnapshot) -> Arc<QueryEngine> {
        let mut cached = self.engine.lock().expect("lock poisoned");
        if let Some((epoch, engine)) = cached.as_ref() {
            if *epoch == snap.epoch {
                return Arc::clone(engine);
            }
        }
        let mut fresh = TripleStore::new();
        export_prov_into(&snap.graph, &mut fresh);
        let engine = Arc::new(QueryEngine::new(Arc::new(fresh)));
        *cached = Some((snap.epoch, Arc::clone(&engine)));
        engine
    }
}

impl Platform {
    /// Build a platform with the given Mapper configuration.
    pub fn new(mapper: Mapper) -> Self {
        let repository = Arc::new(ResourceRepository::new());
        let traces = Arc::new(TraceStore::new());
        Platform {
            recorder: Recorder {
                repository: Arc::clone(&repository),
                traces: Arc::clone(&traces),
            },
            repository,
            traces,
            catalog: RwLock::new(ServiceCatalog::new()),
            services: RwLock::new(HashMap::new()),
            materialized: RwLock::new(HashMap::new()),
            mapper,
            fault: RwLock::new(FaultPolicy::default()),
            live: RwLock::new(HashMap::new()),
            index_states: RwLock::new(HashMap::new()),
            store: RwLock::new(None),
        }
    }

    /// Replace the fault-tolerance policy applied to every subsequent
    /// execution (default: abort on first failure, after rollback).
    pub fn set_fault_policy(&self, fault: FaultPolicy) {
        *self.fault.write().expect("lock poisoned") = fault;
    }

    /// Access the underlying Recorder (e.g. for out-of-process exchanges).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Access the catalog (read lock).
    pub fn catalog_text(&self) -> String {
        self.catalog.read().expect("lock poisoned").to_text()
    }

    /// Register a service implementation together with its catalog entry
    /// (endpoint/signature defaults plus its mapping rules `M(s)`).
    pub fn register_service(
        &self,
        service: Arc<dyn Service>,
        rules: &[&str],
    ) -> Result<(), PlatformError> {
        let name = service.name().to_string();
        self.catalog.write().expect("lock poisoned").register_simple(&name, rules)?;
        self.services.write().expect("lock poisoned").insert(name, service);
        Ok(())
    }

    /// The per-execution façade: every recording, materialisation and
    /// query operation on one execution, in one place. The handle is
    /// cheap — construct one per request.
    pub fn execution(&self, exec_id: impl Into<String>) -> ExecutionHandle<'_> {
        ExecutionHandle {
            platform: self,
            id: exec_id.into(),
        }
    }

    /// Known execution ids, sorted — the serve daemon's `status` listing.
    /// With a store attached, evicted (disk-only) executions are included.
    pub fn executions(&self) -> Vec<String> {
        let mut ids = self.repository.execution_ids();
        if let Some(ss) = self.store_state() {
            for id in ss.store.execution_ids() {
                if !ids.contains(&id) {
                    ids.push(id);
                }
            }
            ids.sort();
        }
        ids
    }

    /// Ingest an initial document as a new execution. With a store
    /// attached the document is persisted best-effort right away (the
    /// write-through on the next execution repeats it durably).
    pub fn ingest(&self, exec_id: &str, doc: Document) {
        self.repository.put(exec_id, doc);
        if let Some(ss) = self.store_state() {
            self.touch_lru(&ss, exec_id);
            let _ = self.persist_through(exec_id);
            let _ = self.evict_excess(&ss, exec_id);
        }
    }

    /// Execute a sequential workflow (a sequence of registered service
    /// names) over a stored execution's document, recording every call.
    pub fn execute(&self, exec_id: &str, steps: &[&str]) -> Result<(), PlatformError> {
        self.execute_spec(exec_id, &WorkflowSpec::sequence(steps))
    }

    /// Execute a [`WorkflowSpec`] — possibly containing parallel blocks —
    /// over a stored execution's document. Branch calls are recorded with
    /// their control-flow channels, which the Mapper's strategies respect
    /// during inference.
    pub fn execute_spec(&self, exec_id: &str, spec: &WorkflowSpec) -> Result<(), PlatformError> {
        self.ensure_resident(exec_id)?;
        let mut doc = self
            .repository
            .get(exec_id)
            .ok_or_else(|| PlatformError::UnknownExecution(exec_id.to_string()))?;
        let prior = self.traces.get(exec_id);
        let mut start = next_time(&doc);
        if let Some(last) = prior.as_ref().and_then(|t| t.calls.last()) {
            start = start.max(last.time + 1);
        }
        let workflow = self.build_workflow(spec)?;
        let fault = self.fault.read().expect("lock poisoned").clone();
        let mut orch = Orchestrator::new().with_fault(fault);
        let live = self.live.read().expect("lock poisoned").get(exec_id).cloned();
        if let Some(maintainer) = &live {
            let state = self.index_state(exec_id);
            {
                // Fold in anything recorded before live mode was enabled (or
                // sources present before any call), then open a fresh segment:
                // the orchestration below reports its calls from index 0. The
                // catch-up delta is published like any other — maintainer
                // lock released before the master is touched.
                let (delta, calls) = {
                    let mut lp = maintainer.lock().expect("lock poisoned");
                    let folded = lp.calls_folded();
                    let delta = lp.catch_up_from(&doc, &prior.unwrap_or_default(), folded);
                    lp.new_segment();
                    (delta, lp.calls_folded())
                };
                state.apply_delta(&delta, calls);
            }
            let hook_lp = Arc::clone(maintainer);
            orch = orch.with_call_hook(Arc::new(move |doc, trace, idx| {
                let (delta, calls) = {
                    let mut lp = hook_lp.lock().expect("lock poisoned");
                    let delta = lp.observe_call(doc, trace, idx);
                    (delta, lp.calls_folded())
                };
                state.apply_delta(&delta, calls);
            }));
        }
        let outcome = orch.execute_starting_at(&workflow, &mut doc, start)?;
        // persist: document into the repository, calls into the trace store
        for call in &outcome.trace.calls {
            let produced_uris: Vec<String> = call
                .produced
                .iter()
                .filter_map(|&n| doc.resource(n).map(|m| m.uri.clone()))
                .collect();
            self.traces.record(exec_id, call.clone(), &produced_uris);
        }
        self.repository.put(exec_id, doc);
        self.persist_through(exec_id)?;
        Ok(())
    }

    /// Incrementally recompute a prior execution under a changed input
    /// document, registering the result as the new execution `new_id`.
    ///
    /// The dirty cone is taken from the prior execution's published
    /// [`EpochSnapshot`] ([`dirty_cone`] over `changed_uris`, widened with
    /// an inherit-mode inference so contained resources are covered); only calls
    /// whose produced resources intersect it are re-executed, every other
    /// fragment is spliced forward from the prior document (see
    /// [`Orchestrator::replay`]). `changed` must be the prior execution's
    /// *initial* document with the changed artifacts edited in place —
    /// structure-preserving, same node arena shape.
    ///
    /// Only sequential traces can be replayed (parallel-channel traces
    /// interleave call ranges, which the splice planner does not model).
    /// The prior execution is left untouched; `new_id` must be fresh.
    pub fn replay_execution(
        &self,
        prior_id: &str,
        new_id: &str,
        mut changed: Document,
        changed_uris: &[String],
        proof: ProofMode,
    ) -> Result<ReplayReport, PlatformError> {
        let replay_err = |message: &str| {
            PlatformError::Workflow(WorkflowError::Service {
                service: "replay".into(),
                message: message.into(),
            })
        };
        if new_id == prior_id
            || self.repository.with(new_id, |_| ()).is_some()
            || self.store_state().is_some_and(|ss| ss.store.contains(new_id))
        {
            return Err(replay_err(&format!(
                "replay target {new_id:?} already exists; pick a fresh execution id"
            )));
        }
        self.ensure_resident(prior_id)?;
        let prior_doc = self
            .repository
            .get(prior_id)
            .ok_or_else(|| PlatformError::UnknownExecution(prior_id.to_string()))?;
        let prior_trace = self
            .traces
            .get(prior_id)
            .filter(|t| !t.calls.is_empty())
            .ok_or_else(|| PlatformError::UnknownExecution(prior_id.to_string()))?;
        if prior_trace.has_parallel_channels() {
            return Err(replay_err(
                "cannot replay a parallel-channel trace; re-execute the workflow instead",
            ));
        }
        let names: Vec<&str> = prior_trace.calls.iter().map(|c| c.service.as_str()).collect();
        let workflow = self.build_workflow(&WorkflowSpec::sequence(&names))?;
        let snap = self.snapshot_impl(prior_id)?;
        // The published snapshot's links may omit containment (inherited)
        // provenance — a fragment's non-anchor resources (a unit's
        // TextContent) would then have no link to the changed source and
        // their consumers would be spliced stale. Union the snapshot cone
        // with one over an inherit-mode inference of the prior execution.
        let rules = self.catalog.read().expect("lock poisoned").rule_set();
        let inherit_graph = weblab_prov::infer_provenance(
            &prior_doc,
            &prior_trace,
            &rules,
            &EngineOptions {
                inherit: weblab_prov::InheritMode::PatternRewrite,
                ..EngineOptions::default()
            },
        );
        let inherit_index = weblab_prov::ReachabilityIndex::from_graph(&inherit_graph);
        let mut dirty: HashSet<String> =
            dirty_cone(&snap.index, changed_uris).into_iter().collect();
        dirty.extend(dirty_cone(&inherit_index, changed_uris));
        let replayed = Orchestrator::new().replay(
            &workflow,
            &mut changed,
            &prior_doc,
            &prior_trace,
            &dirty,
            proof,
        )?;
        // Register the result exactly as execute_spec persists a run:
        // calls into the trace store, document into the repository, then
        // write-through. Live mode is inherited from the prior execution
        // through the proven "enabled late" catch-up path.
        for call in &replayed.outcome.trace.calls {
            let produced_uris: Vec<String> = call
                .produced
                .iter()
                .filter_map(|&n| changed.resource(n).map(|m| m.uri.clone()))
                .collect();
            self.traces.record(new_id, call.clone(), &produced_uris);
        }
        if self.live_enabled_impl(prior_id) {
            self.enable_live_impl(new_id);
        }
        self.repository.put(new_id, changed);
        if let Some(ss) = self.store_state() {
            self.touch_lru(&ss, new_id);
            self.persist_through(new_id)?;
            self.evict_excess(&ss, new_id)?;
        }
        Ok(ReplayReport {
            execution: new_id.to_string(),
            cone_size: replayed.cone_size,
            reused: replayed.reused,
            recomputed: replayed.recomputed,
            splices: replayed.splices,
            grades: replayed.grades,
        })
    }

    fn build_workflow(&self, spec: &WorkflowSpec) -> Result<Workflow, PlatformError> {
        let services = self.services.read().expect("lock poisoned");
        let mut wf = Workflow::new();
        for step in &spec.steps {
            match step {
                SpecStep::Service(name) => {
                    let svc = services
                        .get(name)
                        .cloned()
                        .ok_or_else(|| PlatformError::UnknownService(name.clone()))?;
                    wf = wf.then(svc);
                }
                SpecStep::Parallel(branches) => {
                    let built: Result<Vec<Workflow>, PlatformError> =
                        branches.iter().map(|b| self.build_workflow(b)).collect();
                    wf = wf.then_parallel(built?);
                }
            }
        }
        Ok(wf)
    }

    /// Get-or-create the index state of an execution.
    fn index_state(&self, exec_id: &str) -> Arc<IndexState> {
        if let Some(state) = self.index_states.read().expect("lock poisoned").get(exec_id) {
            return Arc::clone(state);
        }
        Arc::clone(
            self.index_states
                .write()
                .expect("lock poisoned")
                .entry(exec_id.to_string())
                .or_insert_with(|| Arc::new(IndexState::new())),
        )
    }

    /// Attach a disk store: every execution is written through to it, and
    /// at most `max_resident` executions stay in memory — the rest answer
    /// queries after a transparent cold load. Executions already resident
    /// are adopted (and persisted on their next operation or eviction).
    pub fn attach_store(&self, store: ProvStore, max_resident: usize) -> Result<(), PlatformError> {
        let ss = Arc::new(StoreState {
            store: Arc::new(store),
            max_resident: max_resident.max(1),
            lru: Mutex::new(Vec::new()),
            loading: Mutex::new(()),
        });
        for id in self.repository.execution_ids() {
            self.touch_lru(&ss, &id);
        }
        *self.store.write().expect("lock poisoned") = Some(Arc::clone(&ss));
        self.evict_excess(&ss, "")
    }

    /// The attached disk store, if any — what the serve daemon's
    /// background compactor folds segments through.
    pub fn store(&self) -> Option<Arc<ProvStore>> {
        self.store_state().map(|ss| Arc::clone(&ss.store))
    }

    fn store_state(&self) -> Option<Arc<StoreState>> {
        self.store.read().expect("lock poisoned").clone()
    }

    /// Mark an execution most-recently-used, adding it to the resident set
    /// if it was not tracked yet.
    fn touch_lru(&self, ss: &StoreState, exec_id: &str) {
        let mut lru = ss.lru.lock().expect("lock poisoned");
        if let Some(pos) = lru.iter().position(|id| id == exec_id) {
            let id = lru.remove(pos);
            lru.push(id);
        } else {
            lru.push(exec_id.to_string());
            RESIDENT.inc();
        }
    }

    /// Make an execution resident, cold-loading it from the attached store
    /// if it was evicted. A no-op without a store, or when the execution is
    /// neither resident nor stored (callers then report UnknownExecution as
    /// before).
    fn ensure_resident(&self, exec_id: &str) -> Result<(), PlatformError> {
        let Some(ss) = self.store_state() else {
            return Ok(());
        };
        if self.repository.with(exec_id, |_| ()).is_some() {
            self.touch_lru(&ss, exec_id);
            return Ok(());
        }
        let _guard = ss.loading.lock().expect("lock poisoned");
        // Double-check: a concurrent load may have won the lock first.
        if self.repository.with(exec_id, |_| ()).is_some() {
            self.touch_lru(&ss, exec_id);
            return Ok(());
        }
        let Some(stored) = ss.store.load(exec_id)? else {
            return Ok(());
        };
        // Rebuild in-memory state. The trace goes in first; the repository
        // entry is the residency signal, so it is published last.
        let produced: Vec<Vec<String>> = stored
            .trace
            .calls
            .iter()
            .map(|c| {
                c.produced
                    .iter()
                    .filter_map(|&n| stored.doc.resource(n).map(|m| m.uri.clone()))
                    .collect()
            })
            .collect();
        self.traces.put(exec_id, &stored.trace, &produced);
        let state = self.index_state(exec_id);
        match stored.snapshot {
            Some(snap) => {
                if snap.live && !self.live_enabled_impl(exec_id) {
                    // Fresh maintainer; the next execution catches up on the
                    // reloaded trace (the proven "live enabled late" path).
                    self.enable_live_impl(exec_id);
                }
                state.restore(snap.graph, snap.calls, snap.epoch);
            }
            None => {
                // No fresh snapshot survived (crash between log append and
                // snapshot write): rebuild from the replayed log. Epochs
                // restart, like after ExecutionHandle::invalidate.
                let mut graph = ProvenanceGraph::from_view(&stored.doc.view());
                graph.add_links(stored.links);
                state.publish_full(graph, stored.trace.len());
            }
        }
        self.repository.put(exec_id, stored.doc);
        self.touch_lru(&ss, exec_id);
        drop(_guard);
        self.evict_excess(&ss, exec_id)
    }

    /// Write one execution through to the attached store (document, trace
    /// and link-log tail, current epoch snapshot). No-op without a store.
    fn persist_through(&self, exec_id: &str) -> Result<(), PlatformError> {
        let Some(ss) = self.store_state() else {
            return Ok(());
        };
        let snap = self.snapshot_impl(exec_id)?;
        let doc = self
            .repository
            .get(exec_id)
            .ok_or_else(|| PlatformError::UnknownExecution(exec_id.to_string()))?;
        let trace = self.traces.get(exec_id).unwrap_or_default();
        let live = self.live_enabled_impl(exec_id);
        ss.store.save(exec_id, &doc, &trace, &snap.graph, snap.epoch, live)?;
        Ok(())
    }

    /// Evict least-recently-used executions until at most `max_resident`
    /// remain, never evicting `protect` (the execution being served).
    fn evict_excess(&self, ss: &StoreState, protect: &str) -> Result<(), PlatformError> {
        loop {
            let victim = {
                let lru = ss.lru.lock().expect("lock poisoned");
                if lru.len() <= ss.max_resident {
                    return Ok(());
                }
                lru.iter().find(|id| id.as_str() != protect).cloned()
            };
            let Some(victim) = victim else {
                return Ok(());
            };
            self.evict_impl(&victim)?;
        }
    }

    /// Persist an execution and drop its in-memory state. Returns whether
    /// it was resident. The next query cold-loads it transparently.
    fn evict_impl(&self, exec_id: &str) -> Result<bool, PlatformError> {
        let Some(ss) = self.store_state() else {
            return Ok(false);
        };
        let was_resident = self.repository.with(exec_id, |_| ()).is_some();
        if was_resident {
            self.persist_through(exec_id)?;
            self.repository.remove(exec_id);
            self.traces.remove(exec_id);
            self.materialized.write().expect("lock poisoned").remove(exec_id);
            self.live.write().expect("lock poisoned").remove(exec_id);
            self.index_states.write().expect("lock poisoned").remove(exec_id);
            EVICTIONS.inc();
        }
        let mut lru = ss.lru.lock().expect("lock poisoned");
        if let Some(pos) = lru.iter().position(|id| id == exec_id) {
            lru.remove(pos);
            RESIDENT.dec();
        }
        Ok(was_resident)
    }

    fn provenance_graph_impl(&self, exec_id: &str) -> Result<ProvenanceGraph, PlatformError> {
        self.ensure_resident(exec_id)?;
        let doc = self
            .repository
            .get(exec_id)
            .ok_or_else(|| PlatformError::UnknownExecution(exec_id.to_string()))?;
        let trace = self
            .traces
            .get(exec_id)
            .ok_or_else(|| PlatformError::UnknownExecution(exec_id.to_string()))?;
        let cached = self.materialized.read().expect("lock poisoned").get(exec_id).cloned();
        if let Some(entry) = &cached {
            if entry.calls == trace.len() {
                return Ok(entry.graph.clone());
            }
        }
        let first = cached.as_ref().map(|e| e.calls).unwrap_or(0);
        let rules = self.catalog.read().expect("lock poisoned").rule_set();
        let delta = self
            .mapper
            .materialize_since(&doc, &trace, first, &rules)?;
        let mut graph = ProvenanceGraph::from_view(&doc.view());
        if let Some(entry) = cached {
            graph.add_links(entry.graph.links);
        }
        graph.add_links(delta);
        self.materialized.write().expect("lock poisoned").insert(
            exec_id.to_string(),
            MaterializedGraph {
                calls: trace.len(),
                graph: graph.clone(),
            },
        );
        Ok(graph)
    }

    fn invalidate_impl(&self, exec_id: &str) {
        self.materialized.write().expect("lock poisoned").remove(exec_id);
        self.index_states.write().expect("lock poisoned").remove(exec_id);
    }

    fn enable_live_impl(&self, exec_id: &str) {
        let rules = self.catalog.read().expect("lock poisoned").rule_set();
        let opts = match &self.mapper.strategy {
            MapperStrategy::Native(opts) => *opts,
            MapperStrategy::XQuery(_) => EngineOptions::default(),
        };
        self.live.write().expect("lock poisoned").insert(
            exec_id.to_string(),
            Arc::new(Mutex::new(LiveProvenance::new(rules, opts))),
        );
    }

    fn live_enabled_impl(&self, exec_id: &str) -> bool {
        self.live.read().expect("lock poisoned").contains_key(exec_id)
    }

    fn live_provenance_impl(&self, exec_id: &str) -> Option<Arc<Mutex<LiveProvenance>>> {
        self.live.read().expect("lock poisoned").get(exec_id).cloned()
    }

    fn live_graph_impl(&self, exec_id: &str) -> Result<ProvenanceGraph, PlatformError> {
        self.ensure_resident(exec_id)?;
        let maintainer = self
            .live_provenance_impl(exec_id)
            .ok_or_else(|| PlatformError::UnknownExecution(exec_id.to_string()))?;
        let doc = self
            .repository
            .get(exec_id)
            .ok_or_else(|| PlatformError::UnknownExecution(exec_id.to_string()))?;
        let trace = self.traces.get(exec_id).unwrap_or_default();
        let mut lp = maintainer.lock().expect("lock poisoned");
        let folded = lp.calls_folded();
        lp.catch_up_from(&doc, &trace, folded);
        Ok(lp.to_provenance_graph())
    }

    fn is_materialized_impl(&self, exec_id: &str) -> bool {
        let trace_len = self.traces.get(exec_id).map(|t| t.len()).unwrap_or(0);
        self.materialized
            .read().expect("lock poisoned")
            .get(exec_id)
            .map(|e| e.calls == trace_len)
            .unwrap_or(false)
    }

    /// A current [`EpochSnapshot`] of the execution: the published one if
    /// it already covers every recorded call, else a refresh. A snapshot
    /// published mid-execution by the live hook runs *ahead* of the trace
    /// store (calls reach it only after orchestration), which is why
    /// freshness is `snapshot.calls >= trace len`, not equality.
    fn snapshot_impl(&self, exec_id: &str) -> Result<Arc<EpochSnapshot>, PlatformError> {
        self.ensure_resident(exec_id)?;
        if self.repository.with(exec_id, |_| ()).is_none() {
            return Err(PlatformError::UnknownExecution(exec_id.to_string()));
        }
        let state = self.index_state(exec_id);
        let trace_len = self.traces.get(exec_id).map(|t| t.len()).unwrap_or(0);
        let snap = state.published();
        if snap.epoch > 0 && snap.calls >= trace_len {
            return Ok(snap);
        }
        // Refresh. Graphs are computed (taking the maintainer lock if live)
        // before publish_full takes the master lock — see IndexState's lock
        // ordering note.
        let (graph, calls) = if self.live_enabled_impl(exec_id) {
            let graph = self.live_graph_impl(exec_id)?;
            let folded = self
                .live_provenance_impl(exec_id)
                .map(|m| m.lock().expect("lock poisoned").calls_folded())
                .unwrap_or(trace_len);
            (graph, folded)
        } else if trace_len > 0 {
            (self.provenance_graph_impl(exec_id)?, trace_len)
        } else {
            // Ingested but never executed: sources only, no links yet.
            let doc = self
                .repository
                .get(exec_id)
                .ok_or_else(|| PlatformError::UnknownExecution(exec_id.to_string()))?;
            (ProvenanceGraph::from_view(&doc.view()), 0)
        };
        Ok(state.publish_full(graph, calls))
    }
}

/// The per-execution façade over [`Platform`]: ingestion, execution, live
/// maintenance and — via published [`EpochSnapshot`]s — index-backed
/// provenance queries. This is the only surface the `weblab serve` query
/// service touches.
///
/// ```
/// use std::sync::Arc;
/// use weblab_platform::{Mapper, Platform};
/// use weblab_workflow::generator::generate_corpus;
/// use weblab_workflow::services::Normaliser;
///
/// let p = Platform::new(Mapper::native());
/// p.register_service(
///     Arc::new(Normaliser),
///     &["//NativeContent[$x := @id] => //TextMediaUnit[@origin = $x]"],
/// ).unwrap();
/// let exec = p.execution("exec-1");
/// exec.ingest(generate_corpus(1, 1, 20));
/// exec.execute(&["Normaliser"]).unwrap();
/// let snap = exec.snapshot().unwrap();
/// assert!(snap.epoch >= 1 && !snap.graph.links.is_empty());
/// ```
pub struct ExecutionHandle<'p> {
    platform: &'p Platform,
    id: String,
}

impl ExecutionHandle<'_> {
    /// The execution id this handle is scoped to.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Whether the execution has an ingested document — resident in
    /// memory, or evicted to the attached store.
    pub fn exists(&self) -> bool {
        self.platform.repository.with(&self.id, |_| ()).is_some()
            || self
                .platform
                .store_state()
                .is_some_and(|ss| ss.store.contains(&self.id))
    }

    /// Whether the execution is resident in memory right now (always true
    /// without an attached store, for executions that exist).
    pub fn is_resident(&self) -> bool {
        self.platform.repository.with(&self.id, |_| ()).is_some()
    }

    /// Write this execution through to the attached store without
    /// evicting it. No-op when no store is attached.
    pub fn persist(&self) -> Result<(), PlatformError> {
        self.platform.persist_through(&self.id)
    }

    /// Persist this execution and drop its in-memory state; the next query
    /// cold-loads it transparently. Returns whether it was resident.
    /// No-op (returning `false`) when no store is attached.
    pub fn evict(&self) -> Result<bool, PlatformError> {
        self.platform.evict_impl(&self.id)
    }

    /// Ingest an initial document for this execution.
    pub fn ingest(&self, doc: Document) {
        self.platform.ingest(&self.id, doc);
    }

    /// Execute a sequence of registered service names.
    pub fn execute(&self, steps: &[&str]) -> Result<(), PlatformError> {
        self.platform.execute(&self.id, steps)
    }

    /// Execute a [`WorkflowSpec`], possibly with parallel blocks.
    pub fn execute_spec(&self, spec: &WorkflowSpec) -> Result<(), PlatformError> {
        self.platform.execute_spec(&self.id, spec)
    }

    /// Incrementally recompute this execution under a changed input
    /// document, registering the result as `new_id` — see
    /// [`Platform::replay_execution`].
    pub fn replay(
        &self,
        new_id: &str,
        changed: Document,
        changed_uris: &[String],
        proof: ProofMode,
    ) -> Result<ReplayReport, PlatformError> {
        self.platform
            .replay_execution(&self.id, new_id, changed, changed_uris, proof)
    }

    /// Switch this execution to live provenance maintenance: every
    /// committed call is folded into the link store *and* the reachability
    /// index as it happens, publishing a new [`EpochSnapshot`] per delta.
    pub fn enable_live(&self) {
        self.platform.enable_live_impl(&self.id);
    }

    /// Whether live maintenance is enabled.
    pub fn live_enabled(&self) -> bool {
        self.platform.live_enabled_impl(&self.id)
    }

    /// The live maintainer, shared with any in-flight orchestration's hook
    /// — lock it to inspect mid-execution state.
    pub fn live(&self) -> Option<Arc<Mutex<LiveProvenance>>> {
        self.platform.live_provenance_impl(&self.id)
    }

    /// The batch-materialised provenance graph (incremental Mapper path).
    pub fn graph(&self) -> Result<ProvenanceGraph, PlatformError> {
        self.platform.provenance_graph_impl(&self.id)
    }

    /// The live maintainer's view as a batch-style graph, catching up on
    /// calls recorded outside live mode first.
    pub fn live_graph(&self) -> Result<ProvenanceGraph, PlatformError> {
        self.platform.live_graph_impl(&self.id)
    }

    /// A current epoch snapshot — immutable graph + reachability index.
    /// Queries answered on one snapshot are mutually consistent even while
    /// ingestion publishes newer epochs concurrently.
    pub fn snapshot(&self) -> Result<Arc<EpochSnapshot>, PlatformError> {
        self.platform.snapshot_impl(&self.id)
    }

    /// Direct dependencies of a resource, answered from the reachability
    /// index (no edge-list traversal — counted under `prov.index.hits`).
    pub fn deps(&self, uri: &str) -> Result<Vec<String>, PlatformError> {
        let snap = self.snapshot()?;
        Ok(snap.index.dependencies_of(uri).into_iter().map(String::from).collect())
    }

    /// Direct dependents of a resource, index-answered like
    /// [`ExecutionHandle::deps`].
    pub fn rdeps(&self, uri: &str) -> Result<Vec<String>, PlatformError> {
        let snap = self.snapshot()?;
        Ok(snap.index.dependents_of(uri).into_iter().map(String::from).collect())
    }

    /// Answer a structured provenance query on a current snapshot.
    pub fn query(&self, q: &ProvQuery) -> Result<QueryAnswer, PlatformError> {
        self.query_at(q).map(|(_, answer)| answer)
    }

    /// Like [`ExecutionHandle::query`], also reporting the epoch the
    /// answer was computed at — what the serve protocol echoes back.
    pub fn query_at(&self, q: &ProvQuery) -> Result<(u64, QueryAnswer), PlatformError> {
        let snap = self.snapshot()?;
        let answer = self.query_on(&snap, q)?;
        Ok((snap.epoch, answer))
    }

    /// Answer a structured provenance query on a **pinned** snapshot —
    /// the building block of the serve protocol's `batch` op: every
    /// sub-request of a batch is answered on the same snapshot, so the
    /// whole batch shares one atomic epoch even while live ingestion keeps
    /// publishing newer ones. SPARQL sub-queries still go through the
    /// per-epoch [`QueryEngine`] plan cache.
    pub fn query_on(
        &self,
        snap: &Arc<EpochSnapshot>,
        q: &ProvQuery,
    ) -> Result<QueryAnswer, PlatformError> {
        Ok(match q {
            ProvQuery::Sparql { .. } => {
                let state = self.platform.index_state(&self.id);
                let engine = state.engine_for(snap);
                q.answer_on_engine(snap, &engine)?
            }
            _ => q.answer_on_snapshot(snap, None)?,
        })
    }

    /// A SPARQL SELECT over this execution's PROV-O export.
    pub fn sparql(&self, text: &str) -> Result<Vec<Solution>, PlatformError> {
        match self.query(&ProvQuery::Sparql { query: text.to_string() })? {
            QueryAnswer::Solutions(sols) => Ok(sols),
            _ => unreachable!("Sparql queries answer with Solutions"),
        }
    }

    /// Ranked relevance (v2): spreading activation from `uris` over the
    /// published snapshot's index, under the shared [`QueryOpts`]
    /// envelope. Scores depend only on the published graph — identical at
    /// every worker count and on live- or batch-built indexes.
    pub fn rank(
        &self,
        uris: &[String],
        direction: RankDirection,
        opts: &QueryOpts,
        weights: &[(String, u32)],
    ) -> Result<Vec<RankedEntry>, PlatformError> {
        match self.query(&ProvQuery::Rank {
            uris: uris.to_vec(),
            direction,
            opts: *opts,
            weights: weights.to_vec(),
        })? {
            QueryAnswer::Ranked(entries) => Ok(entries),
            _ => unreachable!("Rank queries answer with Ranked"),
        }
    }

    /// Aggregate analytics (v2): per-service influence, common-origin
    /// clusters and an optional blast radius — from the snapshot index's
    /// precomputed closure sizes, no traversal.
    pub fn summary(&self, uri: Option<&str>) -> Result<GraphSummary, PlatformError> {
        match self.query(&ProvQuery::Summary { uri: uri.map(String::from) })? {
            QueryAnswer::Summary(s) => Ok(s),
            _ => unreachable!("Summary queries answer with Summary"),
        }
    }

    /// Whether the batch graph cache is materialised and current.
    pub fn is_materialized(&self) -> bool {
        self.platform.is_materialized_impl(&self.id)
    }

    /// Drop the cached batch graph and the reachability index, forcing a
    /// rebuild on the next query.
    pub fn invalidate(&self) {
        self.platform.invalidate_impl(&self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_rdf::vocab::PROV_NS;
    use weblab_workflow::generator::generate_corpus;
    use weblab_workflow::services::{LanguageExtractor, Normaliser, Translator};

    fn platform() -> Platform {
        let p = Platform::new(Mapper::native());
        p.register_service(
            Arc::new(Normaliser),
            &["//NativeContent[$x := @id] => //TextMediaUnit[@origin = $x]"],
        )
        .unwrap();
        p.register_service(
            Arc::new(LanguageExtractor),
            &["//TextMediaUnit[$x := @id]/TextContent => //TextMediaUnit[$x := @id]/Annotation[Language]"],
        )
        .unwrap();
        p.register_service(
            Arc::new(Translator::default()),
            &["//TextMediaUnit[$x := @id] => //TextMediaUnit[@translation-of = $x]"],
        )
        .unwrap();
        p
    }

    #[test]
    fn end_to_end_execution_and_query() {
        let p = platform();
        p.ingest("exec-1", generate_corpus(3, 2, 25));
        p.execute(
            "exec-1",
            &["Normaliser", "LanguageExtractor", "Translator"],
        )
        .unwrap();
        let exec = p.execution("exec-1");
        let graph = exec.graph().unwrap();
        assert!(!graph.links.is_empty());
        assert!(graph.is_acyclic());
        // SPARQL over the execution's PROV-O export
        let sols = exec
            .sparql(&format!(
                "PREFIX prov: <{PROV_NS}> SELECT ?d ?s WHERE {{ ?d prov:wasDerivedFrom ?s . }}"
            ))
            .unwrap();
        assert_eq!(sols.len(), graph.links.len());
        assert!(exec.is_materialized());
    }

    #[test]
    fn query_triggers_materialisation_once() {
        let p = platform();
        p.ingest("e", generate_corpus(5, 1, 20));
        p.execute("e", &["Normaliser"]).unwrap();
        let exec = p.execution("e");
        assert!(!exec.is_materialized());
        exec.sparql("SELECT ?s WHERE { ?s <p> ?o . }").unwrap();
        assert!(exec.is_materialized());
    }

    #[test]
    fn execute_makes_materialisation_stale_and_delta_restores_it() {
        let p = platform();
        p.ingest("e", generate_corpus(5, 1, 20));
        p.execute("e", &["Normaliser"]).unwrap();
        let exec = p.execution("e");
        let g1 = exec.graph().unwrap();
        assert!(exec.is_materialized());
        p.execute("e", &["LanguageExtractor"]).unwrap();
        assert!(!exec.is_materialized()); // stale: one call un-materialised
        // incremental re-materialisation equals a from-scratch derivation
        let g2 = exec.graph().unwrap();
        assert!(exec.is_materialized());
        assert!(g2.links.len() > g1.links.len());
        exec.invalidate();
        assert!(!exec.is_materialized());
        let g3 = exec.graph().unwrap();
        assert_eq!(g2.links, g3.links);
    }

    #[test]
    fn unknown_ids_error() {
        let p = platform();
        assert!(matches!(
            p.execute("nope", &["Normaliser"]),
            Err(PlatformError::UnknownExecution(_))
        ));
        p.ingest("e", generate_corpus(1, 1, 10));
        assert!(matches!(
            p.execute("e", &["NoSuchService"]),
            Err(PlatformError::UnknownService(_))
        ));
        assert!(matches!(
            p.execution("other").graph(),
            Err(PlatformError::UnknownExecution(_))
        ));
    }

    #[test]
    fn parallel_spec_execution_records_channels() {
        let p = platform();
        // bilingual corpus processed by two parallel analysis branches
        p.ingest("e", generate_corpus(8, 2, 30));
        let spec = WorkflowSpec::default()
            .then("Normaliser")
            .then_parallel(vec![
                WorkflowSpec::sequence(&["LanguageExtractor"]),
                WorkflowSpec::sequence(&["Translator"]),
            ]);
        p.execute_spec("e", &spec).unwrap();
        let trace = p.traces.get("e").unwrap();
        let channels: Vec<&str> =
            trace.calls.iter().map(|c| c.channel.as_str()).collect();
        assert_eq!(channels, vec!["", "0", "1"]);
        // provenance still materialises and stays acyclic
        let g = p.execution("e").graph().unwrap();
        assert!(g.is_acyclic());
        // the Translator branch could not see the sibling's annotations:
        // every Translator dependency predates the fork
        for l in &g.links {
            if l.from_uri.contains("Translator") {
                assert!(!l.to_uri.contains("LanguageExtractor"));
            }
        }
    }

    #[test]
    fn unknown_service_in_spec_is_reported() {
        let p = platform();
        p.ingest("e", generate_corpus(1, 1, 10));
        let spec = WorkflowSpec::default()
            .then_parallel(vec![WorkflowSpec::sequence(&["Nope"])]);
        assert!(matches!(
            p.execute_spec("e", &spec),
            Err(PlatformError::UnknownService(_))
        ));
    }

    #[test]
    fn flaky_service_retries_transparently_under_a_retry_policy() {
        use weblab_workflow::services::Flaky;
        use weblab_workflow::RetryPolicy;
        let p = platform();
        p.register_service(Arc::new(Flaky::failing(2)), &[]).unwrap();
        p.set_fault_policy(FaultPolicy::retrying(RetryPolicy::with_max_attempts(3)));
        p.ingest("e", generate_corpus(1, 1, 10));
        p.execute("e", &["Normaliser", "Flaky"]).unwrap();
        // both steps made it into the trace exactly once: the two failed
        // attempts were rolled back before recording
        let trace = p.traces.get("e").unwrap();
        let services: Vec<&str> = trace.calls.iter().map(|c| c.service.as_str()).collect();
        assert_eq!(services, vec!["Normaliser", "Flaky"]);
        // and the rolled-back attempts left no probes behind
        let doc = p.repository.get("e").unwrap();
        let v = doc.view();
        let probes = v
            .descendants(doc.root())
            .filter(|&n| v.name(n) == Some("FlakyProbe"))
            .count();
        assert_eq!(probes, 1);
    }

    #[test]
    fn live_graph_matches_batch_after_execution() {
        let p = platform();
        let exec = p.execution("e");
        exec.ingest(generate_corpus(4, 2, 25));
        exec.enable_live();
        let spec = WorkflowSpec::default()
            .then("Normaliser")
            .then_parallel(vec![
                WorkflowSpec::sequence(&["LanguageExtractor"]),
                WorkflowSpec::sequence(&["Translator"]),
            ]);
        p.execute_spec("e", &spec).unwrap();
        let live = exec.live_graph().unwrap();
        let batch = exec.graph().unwrap();
        let mut batch_links = batch.links.clone();
        batch_links.sort();
        assert_eq!(live.links, batch_links);
        assert_eq!(live.sources, batch.sources);
        assert!(!live.links.is_empty());
    }

    #[test]
    fn live_queries_answer_without_rematerialisation() {
        let p = platform();
        let exec = p.execution("e");
        exec.ingest(generate_corpus(3, 1, 20));
        exec.enable_live();
        assert!(exec.live_enabled());
        p.execute("e", &["Normaliser", "LanguageExtractor"]).unwrap();
        // the live store already holds the graph: querying it does not
        // trigger batch materialisation
        let batch = exec.graph().unwrap();
        exec.invalidate();
        for l in &batch.links {
            let deps = exec.deps(&l.from_uri).unwrap();
            assert!(deps.contains(&l.to_uri));
            let rdeps = exec.rdeps(&l.to_uri).unwrap();
            assert!(rdeps.contains(&l.from_uri));
        }
        assert!(!exec.is_materialized()); // live answers left the cache alone
    }

    #[test]
    fn live_enabled_late_catches_up_on_prior_calls() {
        let p = platform();
        let exec = p.execution("e");
        exec.ingest(generate_corpus(3, 1, 20));
        p.execute("e", &["Normaliser"]).unwrap();
        exec.enable_live(); // after one call already recorded
        p.execute("e", &["LanguageExtractor", "Translator"]).unwrap();
        let live = exec.live_graph().unwrap();
        let batch = exec.graph().unwrap();
        let mut batch_links = batch.links.clone();
        batch_links.sort();
        assert_eq!(live.links, batch_links);
        assert_eq!(live.sources, batch.sources);
        let trace = p.traces.get("e").unwrap();
        let lp = exec.live().unwrap();
        assert_eq!(lp.lock().unwrap().calls_folded(), trace.calls.len());
    }

    #[test]
    fn live_ignores_rolled_back_attempts() {
        use weblab_workflow::services::Flaky;
        use weblab_workflow::RetryPolicy;
        let p = platform();
        p.register_service(Arc::new(Flaky::failing(2)), &[]).unwrap();
        p.set_fault_policy(FaultPolicy::retrying(RetryPolicy::with_max_attempts(3)));
        let exec = p.execution("e");
        exec.ingest(generate_corpus(2, 1, 15));
        exec.enable_live();
        p.execute("e", &["Normaliser", "Flaky", "LanguageExtractor"]).unwrap();
        let live = exec.live_graph().unwrap();
        let batch = exec.graph().unwrap();
        let mut batch_links = batch.links.clone();
        batch_links.sort();
        assert_eq!(live.links, batch_links);
        // only committed calls were folded in — one per workflow step
        let lp = exec.live().unwrap();
        assert_eq!(lp.lock().unwrap().calls_folded(), 3);
    }

    #[test]
    fn non_live_dependency_queries_fall_back_to_batch() {
        let p = platform();
        let exec = p.execution("e");
        exec.ingest(generate_corpus(2, 1, 15));
        p.execute("e", &["Normaliser"]).unwrap();
        assert!(!exec.live_enabled());
        let batch = exec.graph().unwrap();
        let l = &batch.links[0];
        assert!(exec.deps(&l.from_uri).unwrap().contains(&l.to_uri));
        assert!(matches!(
            exec.live_graph(),
            Err(PlatformError::UnknownExecution(_))
        ));
    }

    #[test]
    fn catalog_text_lists_registered_services() {
        let p = platform();
        let text = p.catalog_text();
        assert!(text.contains("[service] Normaliser"));
        assert!(text.contains("rule: //NativeContent"));
    }

    #[test]
    fn executions_keep_independent_graphs() {
        let p = platform();
        p.ingest("a", generate_corpus(1, 1, 15));
        p.ingest("b", generate_corpus(2, 1, 15));
        p.execute("a", &["Normaliser"]).unwrap();
        p.execute("b", &["Normaliser"]).unwrap();
        let ga = p.execution("a").graph().unwrap();
        let gb = p.execution("b").graph().unwrap();
        assert!(!ga.links.is_empty());
        assert!(!gb.links.is_empty());
        assert!(p.execution("a").is_materialized() && p.execution("b").is_materialized());
        assert_eq!(p.executions(), vec!["a", "b"]);
    }

    #[test]
    fn handle_facade_answers_match_the_graph() {
        let p = platform();
        let exec = p.execution("e");
        exec.ingest(generate_corpus(3, 2, 25));
        exec.execute(&["Normaliser", "LanguageExtractor", "Translator"]).unwrap();
        assert!(exec.exists());
        assert_eq!(exec.id(), "e");
        let graph = exec.graph().unwrap();
        for l in &graph.links {
            let deps: Vec<String> =
                graph.dependencies_of(&l.from_uri).into_iter().map(String::from).collect();
            assert_eq!(exec.deps(&l.from_uri).unwrap(), deps);
            let rdeps: Vec<String> =
                graph.dependents_of(&l.to_uri).into_iter().map(String::from).collect();
            assert_eq!(exec.rdeps(&l.to_uri).unwrap(), rdeps);
        }
        assert!(exec.is_materialized());
        assert!(!p.execution("missing").exists());
        assert!(matches!(
            p.execution("missing").snapshot(),
            Err(PlatformError::UnknownExecution(_))
        ));
    }

    #[test]
    fn handle_rank_and_summary_answer_from_the_snapshot() {
        let p = platform();
        let exec = p.execution("e");
        exec.ingest(generate_corpus(3, 2, 25));
        exec.execute(&["Normaliser", "LanguageExtractor", "Translator"]).unwrap();
        let snap = exec.snapshot().unwrap();
        let seed = snap.graph.links[0].to_uri.clone();
        let opts = QueryOpts { limit: 10, ..Default::default() };
        let ranked = exec.rank(std::slice::from_ref(&seed), RankDirection::Up, &opts, &[]).unwrap();
        assert_eq!(ranked[0].uri, seed);
        assert_eq!(ranked[0].score_micro, weblab_prov::rank::SCALE);
        assert!(ranked.len() > 1, "seed should activate dependents");
        // the handle's answer is the rank module's answer on the same index
        assert_eq!(
            ranked,
            weblab_prov::rank::rank(
                &snap.index,
                std::slice::from_ref(&seed),
                RankDirection::Up,
                &opts,
                &[]
            )
        );
        let s = exec.summary(Some(&seed)).unwrap();
        assert_eq!(s.edges, snap.graph.links.len() as u64);
        assert_eq!(
            s.blast.as_ref().unwrap().impacted,
            snap.index.impacted_by(&seed).len() as u64
        );
        assert!(!s.services.is_empty());
    }

    #[test]
    fn live_snapshots_advance_per_delta_and_track_the_live_graph() {
        let p = platform();
        let exec = p.execution("e");
        exec.ingest(generate_corpus(3, 1, 20));
        exec.enable_live();
        assert!(exec.live_enabled());
        exec.execute(&["Normaliser", "LanguageExtractor"]).unwrap();
        let snap = exec.snapshot().unwrap();
        // at least one epoch per committed call (plus the catch-up publish)
        assert!(snap.epoch >= 2, "epoch {} after two live calls", snap.epoch);
        assert_eq!(snap.calls, 2);
        // the published snapshot IS the live graph — no batch materialisation
        assert_eq!(snap.graph.links, exec.live_graph().unwrap().links);
        assert!(!exec.is_materialized());
        // freshness: querying again serves the same snapshot
        let again = exec.snapshot().unwrap();
        assert_eq!(again.epoch, snap.epoch);
        // a further call publishes a newer epoch
        exec.execute(&["Translator"]).unwrap();
        let after = exec.snapshot().unwrap();
        assert!(after.epoch > snap.epoch);
        assert_eq!(after.calls, 3);
        assert!(after.graph.links.len() >= snap.graph.links.len());
    }

    #[test]
    fn handle_queries_answer_like_batch_on_the_snapshot_graph() {
        let p = platform();
        let exec = p.execution("e");
        exec.ingest(generate_corpus(3, 2, 25));
        exec.execute(&["Normaliser", "LanguageExtractor", "Translator"]).unwrap();
        let snap = exec.snapshot().unwrap();
        let sparql = format!(
            "PREFIX prov: <{PROV_NS}> SELECT ?d ?s WHERE {{ ?d prov:wasDerivedFrom ?s . }}"
        );
        let mut queries = vec![ProvQuery::Sparql { query: sparql.clone() }];
        for l in &snap.graph.links {
            queries.push(ProvQuery::Why { uri: l.from_uri.clone() });
            queries.push(ProvQuery::Lineage { uri: l.from_uri.clone(), depth: 2 });
            queries.push(ProvQuery::ImpactedBy { uri: l.to_uri.clone() });
            queries.push(ProvQuery::CommonOrigins {
                a: l.from_uri.clone(),
                b: l.to_uri.clone(),
            });
        }
        for q in &queries {
            let (epoch, answer) = exec.query_at(q).unwrap();
            assert_eq!(epoch, snap.epoch);
            assert_eq!(answer, q.answer_on_graph(&snap.graph).unwrap(), "op {}", q.op());
        }
        // the sparql convenience wrapper unwraps the same solutions
        let sols = exec.sparql(&sparql).unwrap();
        assert_eq!(sols.len(), snap.graph.links.len());
    }

    #[test]
    fn invalidate_resets_the_snapshot_epoch() {
        let p = platform();
        let exec = p.execution("e");
        exec.ingest(generate_corpus(2, 1, 15));
        exec.execute(&["Normaliser"]).unwrap();
        let before = exec.snapshot().unwrap();
        assert!(before.epoch >= 1);
        exec.invalidate();
        assert!(!exec.is_materialized());
        let after = exec.snapshot().unwrap();
        // a fresh index state starts its epochs over, with the same graph
        assert_eq!(after.epoch, 1);
        assert_eq!(after.graph.links, before.graph.links);
    }

    fn tmpstore(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir()
            .join(format!("weblab-platform-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn evicted_executions_cold_load_with_identical_snapshots() {
        let p = platform();
        let dir = tmpstore("coldload");
        p.attach_store(ProvStore::open(&dir).unwrap(), 8).unwrap();
        let exec = p.execution("e/1");
        exec.ingest(generate_corpus(3, 2, 25));
        exec.execute(&["Normaliser", "LanguageExtractor", "Translator"]).unwrap();
        let before = exec.snapshot().unwrap();
        let why_before = exec.query(&ProvQuery::Why {
            uri: before.graph.links[0].from_uri.clone(),
        })
        .unwrap();

        assert!(exec.evict().unwrap());
        assert!(!exec.is_resident());
        assert!(exec.exists(), "evicted executions still exist");

        // The next query cold-loads transparently and answers at the same
        // epoch with the same graph — byte-identical to the resident path.
        let after = exec.snapshot().unwrap();
        assert!(exec.is_resident());
        assert_eq!(after.epoch, before.epoch);
        assert_eq!(after.calls, before.calls);
        assert_eq!(after.graph.links, before.graph.links);
        assert_eq!(after.graph.sources, before.graph.sources);
        let why_after = exec.query(&ProvQuery::Why {
            uri: before.graph.links[0].from_uri.clone(),
        })
        .unwrap();
        assert_eq!(why_after, why_before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_bounds_residency_and_listings_span_disk() {
        let p = platform();
        let dir = tmpstore("lru");
        p.attach_store(ProvStore::open(&dir).unwrap(), 1).unwrap();
        for id in ["a", "b", "c"] {
            let exec = p.execution(id);
            exec.ingest(generate_corpus(2, 1, 15));
            exec.execute(&["Normaliser"]).unwrap();
        }
        // only the most recent execution stayed resident
        assert_eq!(p.repository.execution_ids(), vec!["c"]);
        assert_eq!(p.executions(), vec!["a", "b", "c"]);
        // touching an evicted one swaps it in and the old resident out
        let g = p.execution("a").graph().unwrap();
        assert!(!g.links.is_empty());
        assert_eq!(p.repository.execution_ids(), vec!["a"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cold_load_restores_live_mode_and_resumes_execution() {
        let p = platform();
        let dir = tmpstore("live");
        p.attach_store(ProvStore::open(&dir).unwrap(), 4).unwrap();
        let exec = p.execution("e");
        exec.ingest(generate_corpus(3, 1, 20));
        exec.enable_live();
        exec.execute(&["Normaliser"]).unwrap();
        assert!(exec.evict().unwrap());

        exec.execute(&["LanguageExtractor", "Translator"]).unwrap();
        assert!(exec.live_enabled(), "live mode survives eviction");
        let live = exec.live_graph().unwrap();
        let batch = exec.graph().unwrap();
        let mut batch_links = batch.links.clone();
        batch_links.sort();
        assert_eq!(live.links, batch_links);
        assert_eq!(live.sources, batch.sources);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_fresh_platform_serves_a_previous_platforms_store() {
        let dir = tmpstore("restart");
        let (before_epoch, before_links) = {
            let p = platform();
            p.attach_store(ProvStore::open(&dir).unwrap(), 4).unwrap();
            let exec = p.execution("e");
            exec.ingest(generate_corpus(3, 2, 25));
            exec.execute(&["Normaliser", "Translator"]).unwrap();
            let snap = exec.snapshot().unwrap();
            (snap.epoch, snap.graph.links.clone())
        };
        // simulated restart: new platform, same directory
        let p = platform();
        p.attach_store(ProvStore::open(&dir).unwrap(), 4).unwrap();
        let exec = p.execution("e");
        assert!(exec.exists());
        assert!(!exec.is_resident());
        let snap = exec.snapshot().unwrap();
        assert_eq!(snap.epoch, before_epoch);
        assert_eq!(snap.graph.links, before_links);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unexecuted_executions_serve_source_only_snapshots() {
        let p = platform();
        let exec = p.execution("e");
        exec.ingest(generate_corpus(2, 1, 15));
        let snap = exec.snapshot().unwrap();
        assert_eq!(snap.calls, 0);
        assert!(snap.epoch >= 1);
        assert!(snap.graph.links.is_empty());
        // acquisition resources are already queryable: each is its own why
        for s in &snap.graph.sources {
            match exec.query(&ProvQuery::Why { uri: s.uri.clone() }).unwrap() {
                QueryAnswer::Why(w) => {
                    assert!(w.links.is_empty());
                    assert!(w.resources.contains(&s.uri));
                }
                other => panic!("unexpected answer {other:?}"),
            }
        }
    }
}
