//! The assembled WebLab PROV platform (Figure 5) and its Request Manager.
//!
//! [`Platform`] wires the Recorder, Resource Repository, Execution Trace
//! store, Service Catalog, Mapper and Provenance triple store together.
//! The Request Manager behaviour lives in [`Platform::provenance_query`]:
//! "it first checks in the Provenance triple-store if the graph has
//! already been materialized by a previous query. If not, the Mapper
//! materializes the request…".

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use std::sync::{Mutex, RwLock};
use weblab_prov::{EngineOptions, LiveProvenance, ProvenanceGraph};
use weblab_rdf::{export_prov, parse_select, select, Solution, SparqlError, TripleStore};
use weblab_workflow::{next_time, FaultPolicy, Orchestrator, Service, Workflow, WorkflowError};
use weblab_xml::Document;

use crate::catalog::{CatalogError, ServiceCatalog};
use crate::mapper::{Mapper, MapperError, MapperStrategy};
use crate::recorder::{Recorder, RecorderError};
use crate::repository::ResourceRepository;
use crate::trace_store::TraceStore;

/// Platform-level failure.
#[derive(Debug)]
pub enum PlatformError {
    /// Unknown execution id.
    UnknownExecution(String),
    /// A workflow step names a service with no registered implementation.
    UnknownService(String),
    /// Catalog manipulation failed.
    Catalog(CatalogError),
    /// A service call failed.
    Workflow(WorkflowError),
    /// Recording failed.
    Recorder(RecorderError),
    /// Provenance materialisation failed.
    Mapper(MapperError),
    /// A provenance query failed to parse.
    Sparql(SparqlError),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownExecution(e) => write!(f, "unknown execution {e:?}"),
            PlatformError::UnknownService(s) => write!(f, "no implementation for service {s:?}"),
            PlatformError::Catalog(e) => write!(f, "{e}"),
            PlatformError::Workflow(e) => write!(f, "{e}"),
            PlatformError::Recorder(e) => write!(f, "{e}"),
            PlatformError::Mapper(e) => write!(f, "{e}"),
            PlatformError::Sparql(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<CatalogError> for PlatformError {
    fn from(e: CatalogError) -> Self {
        PlatformError::Catalog(e)
    }
}

impl From<WorkflowError> for PlatformError {
    fn from(e: WorkflowError) -> Self {
        PlatformError::Workflow(e)
    }
}

impl From<RecorderError> for PlatformError {
    fn from(e: RecorderError) -> Self {
        PlatformError::Recorder(e)
    }
}

impl From<MapperError> for PlatformError {
    fn from(e: MapperError) -> Self {
        PlatformError::Mapper(e)
    }
}

impl From<SparqlError> for PlatformError {
    fn from(e: SparqlError) -> Self {
        PlatformError::Sparql(e)
    }
}

/// A declarative workflow specification over *registered service names*:
/// the platform resolves each name against its service registry and builds
/// the executable [`Workflow`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecStep {
    /// A single service call, by registered name.
    Service(String),
    /// A parallel block of branches (Section 8 extension).
    Parallel(Vec<WorkflowSpec>),
}

/// An ordered list of [`SpecStep`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkflowSpec {
    /// The steps.
    pub steps: Vec<SpecStep>,
}

impl WorkflowSpec {
    /// A sequential spec from service names.
    pub fn sequence(names: &[&str]) -> Self {
        WorkflowSpec {
            steps: names
                .iter()
                .map(|n| SpecStep::Service(n.to_string()))
                .collect(),
        }
    }

    /// Append a service step.
    pub fn then(mut self, name: impl Into<String>) -> Self {
        self.steps.push(SpecStep::Service(name.into()));
        self
    }

    /// Append a parallel block.
    pub fn then_parallel(mut self, branches: Vec<WorkflowSpec>) -> Self {
        self.steps.push(SpecStep::Parallel(branches));
        self
    }
}

/// The assembled platform.
pub struct Platform {
    repository: Arc<ResourceRepository>,
    traces: Arc<TraceStore>,
    recorder: Recorder,
    catalog: RwLock<ServiceCatalog>,
    services: RwLock<HashMap<String, Arc<dyn Service>>>,
    provenance: RwLock<TripleStore>,
    materialized: RwLock<HashMap<String, MaterializedGraph>>,
    mapper: Mapper,
    fault: RwLock<FaultPolicy>,
    /// Live provenance maintainers, per execution id, for executions where
    /// [`Platform::enable_live`] was called. Each is shared with the
    /// call-completion hook of in-flight orchestrations.
    live: RwLock<HashMap<String, Arc<Mutex<LiveProvenance>>>>,
}

/// Cache entry: the graph as of a number of recorded calls.
#[derive(Clone)]
struct MaterializedGraph {
    calls: usize,
    graph: ProvenanceGraph,
}

impl Platform {
    /// Build a platform with the given Mapper configuration.
    pub fn new(mapper: Mapper) -> Self {
        let repository = Arc::new(ResourceRepository::new());
        let traces = Arc::new(TraceStore::new());
        Platform {
            recorder: Recorder {
                repository: Arc::clone(&repository),
                traces: Arc::clone(&traces),
            },
            repository,
            traces,
            catalog: RwLock::new(ServiceCatalog::new()),
            services: RwLock::new(HashMap::new()),
            provenance: RwLock::new(TripleStore::new()),
            materialized: RwLock::new(HashMap::new()),
            mapper,
            fault: RwLock::new(FaultPolicy::default()),
            live: RwLock::new(HashMap::new()),
        }
    }

    /// Replace the fault-tolerance policy applied to every subsequent
    /// execution (default: abort on first failure, after rollback).
    pub fn set_fault_policy(&self, fault: FaultPolicy) {
        *self.fault.write().expect("lock poisoned") = fault;
    }

    /// Access the underlying Recorder (e.g. for out-of-process exchanges).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Access the catalog (read lock).
    pub fn catalog_text(&self) -> String {
        self.catalog.read().expect("lock poisoned").to_text()
    }

    /// Register a service implementation together with its catalog entry
    /// (endpoint/signature defaults plus its mapping rules `M(s)`).
    pub fn register_service(
        &self,
        service: Arc<dyn Service>,
        rules: &[&str],
    ) -> Result<(), PlatformError> {
        let name = service.name().to_string();
        self.catalog.write().expect("lock poisoned").register_simple(&name, rules)?;
        self.services.write().expect("lock poisoned").insert(name, service);
        Ok(())
    }

    /// Ingest an initial document as a new execution.
    pub fn ingest(&self, exec_id: &str, doc: Document) {
        self.repository.put(exec_id, doc);
    }

    /// Execute a sequential workflow (a sequence of registered service
    /// names) over a stored execution's document, recording every call.
    pub fn execute(&self, exec_id: &str, steps: &[&str]) -> Result<(), PlatformError> {
        self.execute_spec(exec_id, &WorkflowSpec::sequence(steps))
    }

    /// Execute a [`WorkflowSpec`] — possibly containing parallel blocks —
    /// over a stored execution's document. Branch calls are recorded with
    /// their control-flow channels, which the Mapper's strategies respect
    /// during inference.
    pub fn execute_spec(&self, exec_id: &str, spec: &WorkflowSpec) -> Result<(), PlatformError> {
        let mut doc = self
            .repository
            .get(exec_id)
            .ok_or_else(|| PlatformError::UnknownExecution(exec_id.to_string()))?;
        let prior = self.traces.get(exec_id);
        let mut start = next_time(&doc);
        if let Some(last) = prior.as_ref().and_then(|t| t.calls.last()) {
            start = start.max(last.time + 1);
        }
        let workflow = self.build_workflow(spec)?;
        let fault = self.fault.read().expect("lock poisoned").clone();
        let mut orch = Orchestrator::new().with_fault(fault);
        let live = self.live.read().expect("lock poisoned").get(exec_id).cloned();
        if let Some(maintainer) = &live {
            {
                // Fold in anything recorded before live mode was enabled (or
                // sources present before any call), then open a fresh segment:
                // the orchestration below reports its calls from index 0.
                let mut lp = maintainer.lock().expect("lock poisoned");
                let folded = lp.calls_folded();
                lp.catch_up_from(&doc, &prior.unwrap_or_default(), folded);
                lp.new_segment();
            }
            let hook = Arc::clone(maintainer);
            orch = orch.with_call_hook(Arc::new(move |doc, trace, idx| {
                hook.lock().expect("lock poisoned").observe_call(doc, trace, idx);
            }));
        }
        let outcome = orch.execute_starting_at(&workflow, &mut doc, start)?;
        // persist: document into the repository, calls into the trace store
        for call in &outcome.trace.calls {
            let produced_uris: Vec<String> = call
                .produced
                .iter()
                .filter_map(|&n| doc.resource(n).map(|m| m.uri.clone()))
                .collect();
            self.traces.record(exec_id, call.clone(), &produced_uris);
        }
        self.repository.put(exec_id, doc);
        Ok(())
    }

    fn build_workflow(&self, spec: &WorkflowSpec) -> Result<Workflow, PlatformError> {
        let services = self.services.read().expect("lock poisoned");
        let mut wf = Workflow::new();
        for step in &spec.steps {
            match step {
                SpecStep::Service(name) => {
                    let svc = services
                        .get(name)
                        .cloned()
                        .ok_or_else(|| PlatformError::UnknownService(name.clone()))?;
                    wf = wf.then(svc);
                }
                SpecStep::Parallel(branches) => {
                    let built: Result<Vec<Workflow>, PlatformError> =
                        branches.iter().map(|b| self.build_workflow(b)).collect();
                    wf = wf.then_parallel(built?);
                }
            }
        }
        Ok(wf)
    }

    /// Materialise (or fetch) the provenance graph of an execution.
    ///
    /// Materialisation is **incremental**: a cached graph is extended with
    /// the links of calls recorded since it was built, instead of
    /// re-deriving everything. (The one operation this cannot absorb is a
    /// later *promotion* of content predating cached calls; use
    /// [`Platform::invalidate_provenance`] after such an ingest.)
    pub fn provenance_graph(&self, exec_id: &str) -> Result<ProvenanceGraph, PlatformError> {
        let doc = self
            .repository
            .get(exec_id)
            .ok_or_else(|| PlatformError::UnknownExecution(exec_id.to_string()))?;
        let trace = self
            .traces
            .get(exec_id)
            .ok_or_else(|| PlatformError::UnknownExecution(exec_id.to_string()))?;
        let cached = self.materialized.read().expect("lock poisoned").get(exec_id).cloned();
        if let Some(entry) = &cached {
            if entry.calls == trace.len() {
                return Ok(entry.graph.clone());
            }
        }
        let first = cached.as_ref().map(|e| e.calls).unwrap_or(0);
        let rules = self.catalog.read().expect("lock poisoned").rule_set();
        let delta = self
            .mapper
            .materialize_since(&doc, &trace, first, &rules)?;
        let mut graph = ProvenanceGraph::from_view(&doc.view());
        if let Some(entry) = cached {
            graph.add_links(entry.graph.links);
        }
        graph.add_links(delta);
        self.provenance.write().expect("lock poisoned").extend(export_prov(&graph));
        self.materialized.write().expect("lock poisoned").insert(
            exec_id.to_string(),
            MaterializedGraph {
                calls: trace.len(),
                graph: graph.clone(),
            },
        );
        Ok(graph)
    }

    /// Drop the cached graph of an execution, forcing full
    /// re-materialisation on the next query.
    pub fn invalidate_provenance(&self, exec_id: &str) {
        self.materialized.write().expect("lock poisoned").remove(exec_id);
    }

    /// Answer a SPARQL provenance query for an execution — the Request
    /// Manager: materialise on first use, then query the Provenance triple
    /// store.
    pub fn provenance_query(
        &self,
        exec_id: &str,
        sparql: &str,
    ) -> Result<Vec<Solution>, PlatformError> {
        if !self.is_materialized(exec_id) {
            self.provenance_graph(exec_id)?;
        }
        let query = parse_select(sparql)?;
        Ok(select(&self.provenance.read().expect("lock poisoned"), &query))
    }

    /// Switch an execution to *live provenance maintenance*: every
    /// subsequent committed service call is folded into a materialised link
    /// store as it happens, so [`Platform::dependencies_of`] /
    /// [`Platform::dependents_of`] answer without re-running inference —
    /// even mid-execution, from the call-completion hook's point of view.
    /// Calls recorded before live mode was enabled are caught up on the
    /// next [`Platform::execute_spec`] or [`Platform::live_graph`] request.
    pub fn enable_live(&self, exec_id: &str) {
        let rules = self.catalog.read().expect("lock poisoned").rule_set();
        let opts = match &self.mapper.strategy {
            MapperStrategy::Native(opts) => *opts,
            MapperStrategy::XQuery(_) => EngineOptions::default(),
        };
        self.live.write().expect("lock poisoned").insert(
            exec_id.to_string(),
            Arc::new(Mutex::new(LiveProvenance::new(rules, opts))),
        );
    }

    /// Whether live maintenance is enabled for an execution.
    pub fn live_enabled(&self, exec_id: &str) -> bool {
        self.live.read().expect("lock poisoned").contains_key(exec_id)
    }

    /// The live maintainer for an execution, shared with any in-flight
    /// orchestration's hook — lock it to query mid-execution state.
    pub fn live_provenance(&self, exec_id: &str) -> Option<Arc<Mutex<LiveProvenance>>> {
        self.live.read().expect("lock poisoned").get(exec_id).cloned()
    }

    /// The live maintainer's view as a batch-style [`ProvenanceGraph`],
    /// catching up on any calls recorded outside live mode first. Errors if
    /// the execution is unknown or live mode was never enabled.
    pub fn live_graph(&self, exec_id: &str) -> Result<ProvenanceGraph, PlatformError> {
        let maintainer = self
            .live_provenance(exec_id)
            .ok_or_else(|| PlatformError::UnknownExecution(exec_id.to_string()))?;
        let doc = self
            .repository
            .get(exec_id)
            .ok_or_else(|| PlatformError::UnknownExecution(exec_id.to_string()))?;
        let trace = self.traces.get(exec_id).unwrap_or_default();
        let mut lp = maintainer.lock().expect("lock poisoned");
        let folded = lp.calls_folded();
        lp.catch_up_from(&doc, &trace, folded);
        Ok(lp.to_provenance_graph())
    }

    /// Direct dependencies of a resource: answered from the live link
    /// store when live mode is enabled for the execution (O(lookup), no
    /// inference), else from the materialised batch graph.
    pub fn dependencies_of(
        &self,
        exec_id: &str,
        uri: &str,
    ) -> Result<Vec<String>, PlatformError> {
        if self.live_enabled(exec_id) {
            let g = self.live_graph(exec_id)?;
            return Ok(g.dependencies_of(uri).into_iter().map(String::from).collect());
        }
        let g = self.provenance_graph(exec_id)?;
        Ok(g.dependencies_of(uri).into_iter().map(String::from).collect())
    }

    /// Direct dependents of a resource — live-store-backed like
    /// [`Platform::dependencies_of`].
    pub fn dependents_of(
        &self,
        exec_id: &str,
        uri: &str,
    ) -> Result<Vec<String>, PlatformError> {
        if self.live_enabled(exec_id) {
            let g = self.live_graph(exec_id)?;
            return Ok(g.dependents_of(uri).into_iter().map(String::from).collect());
        }
        let g = self.provenance_graph(exec_id)?;
        Ok(g.dependents_of(uri).into_iter().map(String::from).collect())
    }

    /// Whether the execution's graph is materialised and current (exposed
    /// for tests and the cache-behaviour benchmark).
    pub fn is_materialized(&self, exec_id: &str) -> bool {
        let trace_len = self.traces.get(exec_id).map(|t| t.len()).unwrap_or(0);
        self.materialized
            .read().expect("lock poisoned")
            .get(exec_id)
            .map(|e| e.calls == trace_len)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_rdf::vocab::PROV_NS;
    use weblab_workflow::generator::generate_corpus;
    use weblab_workflow::services::{LanguageExtractor, Normaliser, Translator};

    fn platform() -> Platform {
        let p = Platform::new(Mapper::native());
        p.register_service(
            Arc::new(Normaliser),
            &["//NativeContent[$x := @id] => //TextMediaUnit[@origin = $x]"],
        )
        .unwrap();
        p.register_service(
            Arc::new(LanguageExtractor),
            &["//TextMediaUnit[$x := @id]/TextContent => //TextMediaUnit[$x := @id]/Annotation[Language]"],
        )
        .unwrap();
        p.register_service(
            Arc::new(Translator::default()),
            &["//TextMediaUnit[$x := @id] => //TextMediaUnit[@translation-of = $x]"],
        )
        .unwrap();
        p
    }

    #[test]
    fn end_to_end_execution_and_query() {
        let p = platform();
        p.ingest("exec-1", generate_corpus(3, 2, 25));
        p.execute(
            "exec-1",
            &["Normaliser", "LanguageExtractor", "Translator"],
        )
        .unwrap();
        let graph = p.provenance_graph("exec-1").unwrap();
        assert!(!graph.links.is_empty());
        assert!(graph.is_acyclic());
        // SPARQL over the materialised store
        let sols = p
            .provenance_query(
                "exec-1",
                &format!(
                    "PREFIX prov: <{PROV_NS}> SELECT ?d ?s WHERE {{ ?d prov:wasDerivedFrom ?s . }}"
                ),
            )
            .unwrap();
        assert_eq!(sols.len(), graph.links.len());
        assert!(p.is_materialized("exec-1"));
    }

    #[test]
    fn query_triggers_materialisation_once() {
        let p = platform();
        p.ingest("e", generate_corpus(5, 1, 20));
        p.execute("e", &["Normaliser"]).unwrap();
        assert!(!p.is_materialized("e"));
        p.provenance_query("e", "SELECT ?s WHERE { ?s <p> ?o . }")
            .unwrap();
        assert!(p.is_materialized("e"));
    }

    #[test]
    fn execute_makes_materialisation_stale_and_delta_restores_it() {
        let p = platform();
        p.ingest("e", generate_corpus(5, 1, 20));
        p.execute("e", &["Normaliser"]).unwrap();
        let g1 = p.provenance_graph("e").unwrap();
        assert!(p.is_materialized("e"));
        p.execute("e", &["LanguageExtractor"]).unwrap();
        assert!(!p.is_materialized("e")); // stale: one call un-materialised
        // incremental re-materialisation equals a from-scratch derivation
        let g2 = p.provenance_graph("e").unwrap();
        assert!(p.is_materialized("e"));
        assert!(g2.links.len() > g1.links.len());
        p.invalidate_provenance("e");
        assert!(!p.is_materialized("e"));
        let g3 = p.provenance_graph("e").unwrap();
        assert_eq!(g2.links, g3.links);
    }

    #[test]
    fn unknown_ids_error() {
        let p = platform();
        assert!(matches!(
            p.execute("nope", &["Normaliser"]),
            Err(PlatformError::UnknownExecution(_))
        ));
        p.ingest("e", generate_corpus(1, 1, 10));
        assert!(matches!(
            p.execute("e", &["NoSuchService"]),
            Err(PlatformError::UnknownService(_))
        ));
        assert!(matches!(
            p.provenance_graph("other"),
            Err(PlatformError::UnknownExecution(_))
        ));
    }

    #[test]
    fn parallel_spec_execution_records_channels() {
        let p = platform();
        // bilingual corpus processed by two parallel analysis branches
        p.ingest("e", generate_corpus(8, 2, 30));
        let spec = WorkflowSpec::default()
            .then("Normaliser")
            .then_parallel(vec![
                WorkflowSpec::sequence(&["LanguageExtractor"]),
                WorkflowSpec::sequence(&["Translator"]),
            ]);
        p.execute_spec("e", &spec).unwrap();
        let trace = p.traces.get("e").unwrap();
        let channels: Vec<&str> =
            trace.calls.iter().map(|c| c.channel.as_str()).collect();
        assert_eq!(channels, vec!["", "0", "1"]);
        // provenance still materialises and stays acyclic
        let g = p.provenance_graph("e").unwrap();
        assert!(g.is_acyclic());
        // the Translator branch could not see the sibling's annotations:
        // every Translator dependency predates the fork
        for l in &g.links {
            if l.from_uri.contains("Translator") {
                assert!(!l.to_uri.contains("LanguageExtractor"));
            }
        }
    }

    #[test]
    fn unknown_service_in_spec_is_reported() {
        let p = platform();
        p.ingest("e", generate_corpus(1, 1, 10));
        let spec = WorkflowSpec::default()
            .then_parallel(vec![WorkflowSpec::sequence(&["Nope"])]);
        assert!(matches!(
            p.execute_spec("e", &spec),
            Err(PlatformError::UnknownService(_))
        ));
    }

    #[test]
    fn flaky_service_retries_transparently_under_a_retry_policy() {
        use weblab_workflow::services::Flaky;
        use weblab_workflow::RetryPolicy;
        let p = platform();
        p.register_service(Arc::new(Flaky::failing(2)), &[]).unwrap();
        p.set_fault_policy(FaultPolicy::retrying(RetryPolicy::with_max_attempts(3)));
        p.ingest("e", generate_corpus(1, 1, 10));
        p.execute("e", &["Normaliser", "Flaky"]).unwrap();
        // both steps made it into the trace exactly once: the two failed
        // attempts were rolled back before recording
        let trace = p.traces.get("e").unwrap();
        let services: Vec<&str> = trace.calls.iter().map(|c| c.service.as_str()).collect();
        assert_eq!(services, vec!["Normaliser", "Flaky"]);
        // and the rolled-back attempts left no probes behind
        let doc = p.repository.get("e").unwrap();
        let v = doc.view();
        let probes = v
            .descendants(doc.root())
            .filter(|&n| v.name(n) == Some("FlakyProbe"))
            .count();
        assert_eq!(probes, 1);
    }

    #[test]
    fn live_graph_matches_batch_after_execution() {
        let p = platform();
        p.ingest("e", generate_corpus(4, 2, 25));
        p.enable_live("e");
        let spec = WorkflowSpec::default()
            .then("Normaliser")
            .then_parallel(vec![
                WorkflowSpec::sequence(&["LanguageExtractor"]),
                WorkflowSpec::sequence(&["Translator"]),
            ]);
        p.execute_spec("e", &spec).unwrap();
        let live = p.live_graph("e").unwrap();
        let batch = p.provenance_graph("e").unwrap();
        let mut batch_links = batch.links.clone();
        batch_links.sort();
        assert_eq!(live.links, batch_links);
        assert_eq!(live.sources, batch.sources);
        assert!(!live.links.is_empty());
    }

    #[test]
    fn live_queries_answer_without_rematerialisation() {
        let p = platform();
        p.ingest("e", generate_corpus(3, 1, 20));
        p.enable_live("e");
        assert!(p.live_enabled("e"));
        p.execute("e", &["Normaliser", "LanguageExtractor"]).unwrap();
        // the live store already holds the graph: querying it does not
        // trigger batch materialisation
        let batch = p.provenance_graph("e").unwrap();
        p.invalidate_provenance("e");
        for l in &batch.links {
            let deps = p.dependencies_of("e", &l.from_uri).unwrap();
            assert!(deps.contains(&l.to_uri));
            let rdeps = p.dependents_of("e", &l.to_uri).unwrap();
            assert!(rdeps.contains(&l.from_uri));
        }
        assert!(!p.is_materialized("e")); // live answers left the cache alone
    }

    #[test]
    fn live_enabled_late_catches_up_on_prior_calls() {
        let p = platform();
        p.ingest("e", generate_corpus(3, 1, 20));
        p.execute("e", &["Normaliser"]).unwrap();
        p.enable_live("e"); // after one call already recorded
        p.execute("e", &["LanguageExtractor", "Translator"]).unwrap();
        let live = p.live_graph("e").unwrap();
        let batch = p.provenance_graph("e").unwrap();
        let mut batch_links = batch.links.clone();
        batch_links.sort();
        assert_eq!(live.links, batch_links);
        assert_eq!(live.sources, batch.sources);
        let trace = p.traces.get("e").unwrap();
        let lp = p.live_provenance("e").unwrap();
        assert_eq!(lp.lock().unwrap().calls_folded(), trace.calls.len());
    }

    #[test]
    fn live_ignores_rolled_back_attempts() {
        use weblab_workflow::services::Flaky;
        use weblab_workflow::RetryPolicy;
        let p = platform();
        p.register_service(Arc::new(Flaky::failing(2)), &[]).unwrap();
        p.set_fault_policy(FaultPolicy::retrying(RetryPolicy::with_max_attempts(3)));
        p.ingest("e", generate_corpus(2, 1, 15));
        p.enable_live("e");
        p.execute("e", &["Normaliser", "Flaky", "LanguageExtractor"]).unwrap();
        let live = p.live_graph("e").unwrap();
        let batch = p.provenance_graph("e").unwrap();
        let mut batch_links = batch.links.clone();
        batch_links.sort();
        assert_eq!(live.links, batch_links);
        // only committed calls were folded in — one per workflow step
        let lp = p.live_provenance("e").unwrap();
        assert_eq!(lp.lock().unwrap().calls_folded(), 3);
    }

    #[test]
    fn non_live_dependency_queries_fall_back_to_batch() {
        let p = platform();
        p.ingest("e", generate_corpus(2, 1, 15));
        p.execute("e", &["Normaliser"]).unwrap();
        assert!(!p.live_enabled("e"));
        let batch = p.provenance_graph("e").unwrap();
        let l = &batch.links[0];
        assert!(p.dependencies_of("e", &l.from_uri).unwrap().contains(&l.to_uri));
        assert!(matches!(
            p.live_graph("e"),
            Err(PlatformError::UnknownExecution(_))
        ));
    }

    #[test]
    fn catalog_text_lists_registered_services() {
        let p = platform();
        let text = p.catalog_text();
        assert!(text.contains("[service] Normaliser"));
        assert!(text.contains("rule: //NativeContent"));
    }

    #[test]
    fn executions_share_the_provenance_store_but_not_graphs() {
        let p = platform();
        p.ingest("a", generate_corpus(1, 1, 15));
        p.ingest("b", generate_corpus(2, 1, 15));
        p.execute("a", &["Normaliser"]).unwrap();
        p.execute("b", &["Normaliser"]).unwrap();
        let ga = p.provenance_graph("a").unwrap();
        let gb = p.provenance_graph("b").unwrap();
        assert!(!ga.links.is_empty());
        assert!(!gb.links.is_empty());
        assert!(p.is_materialized("a") && p.is_materialized("b"));
    }
}
