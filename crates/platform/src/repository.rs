//! The Resource Repository — the platform's versioned XML document store.
//!
//! Figure 5: the Recorder "replaces the updated WebLab document in the
//! Resource Repository"; the Mapper later "calls the Resource Repository
//! for obtaining the final resource of the workflow execution". Documents
//! are keyed by execution id; because a [`Document`] carries its whole
//! append-only history, storing the latest version retains every earlier
//! state.

use std::collections::HashMap;

use std::sync::RwLock;
use weblab_xml::Document;

/// Thread-safe store of workflow documents, keyed by execution id.
#[derive(Debug, Default)]
pub struct ResourceRepository {
    docs: RwLock<HashMap<String, Document>>,
}

impl ResourceRepository {
    /// Empty repository.
    pub fn new() -> Self {
        ResourceRepository::default()
    }

    /// Store (or replace) the document of an execution.
    pub fn put(&self, exec_id: impl Into<String>, doc: Document) {
        self.docs.write().expect("lock poisoned").insert(exec_id.into(), doc);
    }

    /// Clone the stored document of an execution.
    pub fn get(&self, exec_id: &str) -> Option<Document> {
        self.docs.read().expect("lock poisoned").get(exec_id).cloned()
    }

    /// Read-only access without cloning.
    pub fn with<R>(&self, exec_id: &str, f: impl FnOnce(&Document) -> R) -> Option<R> {
        self.docs.read().expect("lock poisoned").get(exec_id).map(f)
    }

    /// Number of stored executions.
    pub fn len(&self) -> usize {
        self.docs.read().expect("lock poisoned").len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.read().expect("lock poisoned").is_empty()
    }

    /// Drop an execution's document (LRU eviction by the platform's store
    /// layer). Returns whether anything was removed.
    pub fn remove(&self, exec_id: &str) -> bool {
        self.docs.write().expect("lock poisoned").remove(exec_id).is_some()
    }

    /// Known execution ids, sorted.
    pub fn execution_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.docs.read().expect("lock poisoned").keys().cloned().collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let repo = ResourceRepository::new();
        let doc = Document::new("Resource");
        repo.put("exec-1", doc);
        assert!(repo.get("exec-1").is_some());
        assert!(repo.get("exec-2").is_none());
        assert_eq!(repo.execution_ids(), vec!["exec-1"]);
        assert_eq!(repo.len(), 1);
    }

    #[test]
    fn with_reads_in_place() {
        let repo = ResourceRepository::new();
        let mut doc = Document::new("Resource");
        doc.append_element(doc.root(), "X").unwrap();
        repo.put("e", doc);
        let n = repo.with("e", |d| d.node_count()).unwrap();
        assert_eq!(n, 2);
        assert_eq!(repo.with("missing", |d| d.node_count()), None);
    }

    #[test]
    fn put_replaces_previous_version() {
        let repo = ResourceRepository::new();
        repo.put("e", Document::new("A"));
        let mut v2 = Document::new("A");
        v2.append_element(v2.root(), "More").unwrap();
        repo.put("e", v2);
        assert_eq!(repo.with("e", |d| d.node_count()).unwrap(), 2);
        assert_eq!(repo.len(), 1);
    }
}
