//! The Execution Trace store.
//!
//! Figure 5: the Recorder "transmits all generated meta-data (service,
//! timestamp, generated nodes) to the Execution Trace triple-store for
//! future use". The store keeps the structured [`ExecutionTrace`] (what
//! the Mapper consumes) and mirrors it into RDF triples so the trace is
//! SPARQL-queryable like everything else in the architecture.

use std::collections::HashMap;

use std::sync::RwLock;
use weblab_obs::Counter;
use weblab_prov::{CallRecord, ExecutionTrace};
use weblab_rdf::{vocab, Term, Triple, TripleStore};

/// Call records written to the store (structured + RDF mirror).
static RECORDS_WRITTEN: Counter = Counter::new("platform.trace_store.records");
/// Structured-trace reads served (`get`).
static TRACE_READS: Counter = Counter::new("platform.trace_store.reads");

/// Namespace predicates for trace triples.
const WL_SERVICE: &str = "http://weblab.example.org/prov#service";
const WL_TIME: &str = "http://weblab.example.org/prov#time";
const WL_PRODUCED: &str = "http://weblab.example.org/prov#produced";
const WL_IN_EXECUTION: &str = "http://weblab.example.org/prov#inExecution";

/// Thread-safe store of execution traces.
#[derive(Debug, Default)]
pub struct TraceStore {
    traces: RwLock<HashMap<String, ExecutionTrace>>,
    triples: RwLock<TripleStore>,
}

impl TraceStore {
    /// Empty store.
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// Record one call of an execution, extending both the structured
    /// trace and the RDF mirror. `produced_uris` are the URIs of
    /// `out(c_i)`.
    pub fn record(&self, exec_id: &str, call: CallRecord, produced_uris: &[String]) {
        RECORDS_WRITTEN.inc();
        let activity = Term::iri(vocab::activity_iri(&call.service, call.time));
        {
            let mut triples = self.triples.write().expect("lock poisoned");
            triples.insert(Triple::new(
                activity.clone(),
                Term::iri(WL_IN_EXECUTION),
                Term::lit(exec_id),
            ));
            triples.insert(Triple::new(
                activity.clone(),
                Term::iri(WL_SERVICE),
                Term::lit(&call.service),
            ));
            triples.insert(Triple::new(
                activity.clone(),
                Term::iri(WL_TIME),
                Term::int(call.time as i64),
            ));
            for uri in produced_uris {
                triples.insert(Triple::new(
                    activity.clone(),
                    Term::iri(WL_PRODUCED),
                    Term::iri(uri.clone()),
                ));
            }
        }
        self.traces
            .write().expect("lock poisoned")
            .entry(exec_id.to_string())
            .or_default()
            .calls
            .push(call);
    }

    /// Store a complete trace at once (used when an orchestrator ran the
    /// workflow outside the platform).
    pub fn put(&self, exec_id: &str, trace: &ExecutionTrace, produced_uris: &[Vec<String>]) {
        for (call, uris) in trace.calls.iter().zip(produced_uris) {
            self.record(exec_id, call.clone(), uris);
        }
    }

    /// The structured trace of an execution.
    pub fn get(&self, exec_id: &str) -> Option<ExecutionTrace> {
        TRACE_READS.inc();
        self.traces.read().expect("lock poisoned").get(exec_id).cloned()
    }

    /// Drop an execution's structured trace (LRU eviction by the
    /// platform's store layer). The RDF mirror is shared across executions
    /// and is left in place — re-recording the trace on a later cold load
    /// re-inserts the same triples, which the set-semantics store
    /// deduplicates. Returns whether anything was removed.
    pub fn remove(&self, exec_id: &str) -> bool {
        self.traces.write().expect("lock poisoned").remove(exec_id).is_some()
    }

    /// Snapshot of the RDF mirror.
    pub fn triples(&self) -> TripleStore {
        self.triples.read().expect("lock poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_xml::Document;

    fn call(service: &str, time: u64) -> CallRecord {
        let doc = Document::new("R");
        CallRecord {
            service: service.into(),
            time,
            input: doc.mark(),
            output: doc.mark(),
            produced: vec![],
            channel: String::new(),
        }
    }

    #[test]
    fn record_builds_trace_and_triples() {
        let store = TraceStore::new();
        store.record("e1", call("Normaliser", 1), &["r4".into(), "r5".into()]);
        store.record("e1", call("Translator", 3), &["r8".into()]);
        let t = store.get("e1").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.calls[1].service, "Translator");

        let triples = store.triples();
        let produced = triples.matching(&None, &Some(Term::iri(WL_PRODUCED)), &None);
        assert_eq!(produced.len(), 3);
        let in_exec = triples.matching(&None, &Some(Term::iri(WL_IN_EXECUTION)), &Some(Term::lit("e1")));
        assert_eq!(in_exec.len(), 2);
    }

    #[test]
    fn executions_are_isolated() {
        let store = TraceStore::new();
        store.record("a", call("S", 1), &[]);
        store.record("b", call("S", 1), &[]);
        assert_eq!(store.get("a").unwrap().len(), 1);
        assert_eq!(store.get("b").unwrap().len(), 1);
        assert!(store.get("c").is_none());
    }
}
