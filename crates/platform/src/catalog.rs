//! The Service Catalog — service metadata and provenance mapping rules.
//!
//! Figure 5: "a Service Catalog with meta-data about services including the
//! service endpoints and signatures as well as the provenance mapping
//! rules". Rules are the *static* half of the provenance model — declared
//! per service type, independently of workflows — and persist in a simple
//! line-oriented text format so catalogs can be shipped alongside service
//! deployments.

use std::collections::BTreeMap;
use std::fmt;

use weblab_prov::{MappingRule, RuleError, RuleSet};

/// Metadata describing one registered service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceEntry {
    /// Service name (the key of `M(s)`).
    pub name: String,
    /// Endpoint descriptor (the original platform stores WSDL endpoints;
    /// here it is an opaque string).
    pub endpoint: String,
    /// Human-readable signature/description.
    pub signature: String,
    /// The provenance mapping rules `M(s)`.
    pub rules: Vec<MappingRule>,
}

/// Catalog error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A rule failed to parse or validate.
    Rule(RuleError),
    /// Malformed persisted catalog text.
    Format {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Rule(e) => write!(f, "{e}"),
            CatalogError::Format { line, message } => {
                write!(f, "catalog format error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<RuleError> for CatalogError {
    fn from(e: RuleError) -> Self {
        CatalogError::Rule(e)
    }
}

/// The catalog: service entries keyed by name.
#[derive(Debug, Clone, Default)]
pub struct ServiceCatalog {
    entries: BTreeMap<String, ServiceEntry>,
}

impl ServiceCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        ServiceCatalog::default()
    }

    /// Register (or replace) a service entry.
    pub fn register(&mut self, entry: ServiceEntry) {
        self.entries.insert(entry.name.clone(), entry);
    }

    /// Convenience: register a service with rules given in concrete syntax.
    pub fn register_simple(
        &mut self,
        name: impl Into<String>,
        rules: &[&str],
    ) -> Result<(), CatalogError> {
        let name = name.into();
        let parsed: Result<Vec<MappingRule>, RuleError> =
            rules.iter().map(|r| MappingRule::parse(r)).collect();
        self.register(ServiceEntry {
            endpoint: format!("local://{name}"),
            signature: format!("{name}(doc) -> doc"),
            name,
            rules: parsed?,
        });
        Ok(())
    }

    /// Look up a service entry.
    pub fn get(&self, name: &str) -> Option<&ServiceEntry> {
        self.entries.get(name)
    }

    /// All entries, in name order.
    pub fn entries(&self) -> impl Iterator<Item = &ServiceEntry> {
        self.entries.values()
    }

    /// Flatten the catalog into the [`RuleSet`] the provenance engine
    /// consumes.
    pub fn rule_set(&self) -> RuleSet {
        let mut rs = RuleSet::new();
        for e in self.entries.values() {
            for r in &e.rules {
                rs.add(e.name.clone(), r.clone());
            }
        }
        rs
    }

    /// Persist to the line-oriented text format:
    ///
    /// ```text
    /// [service] name | endpoint | signature
    /// rule: <mapping rule>
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in self.entries.values() {
            out.push_str(&format!(
                "[service] {} | {} | {}\n",
                e.name, e.endpoint, e.signature
            ));
            for r in &e.rules {
                let mut plain = r.clone();
                plain.name = None;
                out.push_str(&format!("rule: {plain}\n"));
            }
        }
        out
    }

    /// Load from the text format produced by [`ServiceCatalog::to_text`].
    pub fn from_text(text: &str) -> Result<Self, CatalogError> {
        let mut catalog = ServiceCatalog::new();
        let mut current: Option<ServiceEntry> = None;
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("[service]") {
                if let Some(e) = current.take() {
                    catalog.register(e);
                }
                let parts: Vec<&str> = rest.split('|').map(str::trim).collect();
                if parts.len() != 3 || parts[0].is_empty() {
                    return Err(CatalogError::Format {
                        line: i + 1,
                        message: "expected 'name | endpoint | signature'".into(),
                    });
                }
                current = Some(ServiceEntry {
                    name: parts[0].to_string(),
                    endpoint: parts[1].to_string(),
                    signature: parts[2].to_string(),
                    rules: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix("rule:") {
                let Some(entry) = current.as_mut() else {
                    return Err(CatalogError::Format {
                        line: i + 1,
                        message: "rule outside of a [service] block".into(),
                    });
                };
                entry.rules.push(MappingRule::parse(rest.trim())?);
            } else {
                return Err(CatalogError::Format {
                    line: i + 1,
                    message: format!("unrecognised line {line:?}"),
                });
            }
        }
        if let Some(e) = current.take() {
            catalog.register(e);
        }
        Ok(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_flatten() {
        let mut c = ServiceCatalog::new();
        c.register_simple("Translator", &["//T[A/L = 'fr'] => //T[A/L = 'en']"])
            .unwrap();
        c.register_simple("Normaliser", &["/R//N => //T[1]"]).unwrap();
        assert_eq!(c.entries().count(), 2);
        let rs = c.rule_set();
        assert_eq!(rs.rules_for("Translator").len(), 1);
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn text_round_trip() {
        let mut c = ServiceCatalog::new();
        c.register_simple(
            "LanguageExtractor",
            &["//T[$x := @id]/C => //T[$x := @id]/A[L]"],
        )
        .unwrap();
        c.register_simple("Normaliser", &["/R//N => //T[1]"]).unwrap();
        let text = c.to_text();
        let back = ServiceCatalog::from_text(&text).unwrap();
        assert_eq!(back.entries().count(), 2);
        assert_eq!(
            back.get("LanguageExtractor").unwrap().rules,
            c.get("LanguageExtractor").unwrap().rules
        );
    }

    #[test]
    fn format_errors_carry_line_numbers() {
        let e = ServiceCatalog::from_text("rule: //A => //B").unwrap_err();
        assert!(matches!(e, CatalogError::Format { line: 1, .. }));
        let e = ServiceCatalog::from_text("[service] onlyname").unwrap_err();
        assert!(matches!(e, CatalogError::Format { line: 1, .. }));
        let e = ServiceCatalog::from_text("garbage").unwrap_err();
        assert!(matches!(e, CatalogError::Format { line: 1, .. }));
    }

    #[test]
    fn bad_rules_propagate() {
        let mut c = ServiceCatalog::new();
        assert!(c.register_simple("S", &["not a rule"]).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# catalog\n\n[service] S | ep | sig\n# note\nrule: //A => //B\n";
        let c = ServiceCatalog::from_text(text).unwrap();
        assert_eq!(c.get("S").unwrap().rules.len(), 1);
    }
}
