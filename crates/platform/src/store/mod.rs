//! # Disk-backed sharded provenance store
//!
//! The persistent storage engine behind `Platform`'s LRU residency: every
//! execution written through the store survives process death, and an
//! evicted execution cold-loads back with query answers *byte-identical*
//! to the resident path.
//!
//! ## Layout
//!
//! The store root holds 16 shard directories, an execution landing in the
//! shard named by an FNV-1a hash of its id. Inside a shard, each execution
//! owns a family of files keyed by its injectively escaped id (see
//! [`persist`](crate::persist) — `exec/1` becomes `exec%2F1`):
//!
//! ```text
//! store/
//!   shard-07/
//!     exec%2F1.doc.xml     stamped WebLab document
//!     exec%2F1.seg-1       sealed log segment (calls + links, URI dict)
//!     exec%2F1.seg-2
//!     exec%2F1.delta       unsealed tail of the log
//!     exec%2F1.snap-5      index snapshot published at epoch 5
//! ```
//!
//! * **Segments** ([`segment`]) are the append-only trace/link log. Each
//!   covers a contiguous call range declared by its `base:` header;
//!   readers replay segments in base order and skip ranges already
//!   covered, so the one benign duplication compaction can leave behind
//!   (crash between writing a merged segment and unlinking its inputs) is
//!   harmless. New calls and links go to the `.delta` file, which
//!   [`ProvStore::compact`] seals into a numbered segment; when sealed
//!   segments pile up they are folded into one.
//! * **Snapshots** ([`snapshot`]) serialise the published
//!   [`EpochSnapshot`](weblab_prov::EpochSnapshot)'s graph together with
//!   its epoch and call count. Only the newest snapshot is kept.
//!
//! Every file is written with the persist layer's atomic-rename discipline
//! and ends in a checked `# end` integrity footer, so truncation surfaces
//! as [`PersistError::Truncated`] instead of a silently shorter execution.

pub mod segment;
pub mod snapshot;

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::persist::{sanitise, unsanitise, write_atomic, PersistError};
use segment::{SegmentCall, SegmentData};
use snapshot::SnapshotData;
use weblab_obs::Counter;
use weblab_prov::{CallRecord, ExecutionTrace, ProvLink, ProvenanceGraph};
use weblab_xml::{parse_document, to_xml_string, Document};

static SEGMENTS: Counter = Counter::new("store.segments");
static SNAPSHOTS: Counter = Counter::new("store.snapshots");
static DELTA_APPENDS: Counter = Counter::new("store.delta_appends");
static COLD_LOADS: Counter = Counter::new("store.cold_loads");
static COMPACTIONS: Counter = Counter::new("store.compactions");

/// Number of shard directories (hash buckets) under the store root.
const SHARDS: u64 = 16;

/// Sealed segments per execution beyond which compaction folds them into
/// one.
const MAX_SEGMENTS: usize = 4;

/// What the store knows it has already persisted for one execution —
/// enough to turn each save into a pure delta append without re-reading
/// the log.
#[derive(Debug, Default)]
struct Mark {
    /// Calls covered by sealed segments.
    sealed_calls: usize,
    /// Calls in the unsealed delta.
    delta_calls: usize,
    /// Links already in the log (segments + delta), by URI pair.
    link_keys: HashSet<(String, String)>,
    /// Sealed segment numbers, ascending.
    segments: Vec<u64>,
    /// Epoch of the newest on-disk snapshot.
    snapshot_epoch: Option<u64>,
    /// Whether the on-disk state was scanned at least once.
    scanned: bool,
}

/// An execution as read back from disk.
#[derive(Debug)]
pub struct StoredExecution {
    /// The reloaded document.
    pub doc: Document,
    /// The replayed trace (produced URIs resolved against `doc`).
    pub trace: ExecutionTrace,
    /// All logged provenance links, resolved against `doc`.
    pub links: Vec<ProvLink>,
    /// The newest snapshot, if it is fresh (covers the whole trace).
    pub snapshot: Option<SnapshotData>,
}

/// The disk-backed sharded provenance store.
///
/// All methods are safe to call from multiple threads; per-execution
/// bookkeeping lives behind one mutex (I/O under the lock is the
/// simplicity trade-off — the store is the cold path by design).
pub struct ProvStore {
    root: PathBuf,
    marks: Mutex<HashMap<String, Mark>>,
    /// Whether this handle wrote the directory's lock file (and must
    /// remove it on drop). Always true for successfully opened stores;
    /// kept as a field so a partially-constructed store can never unlink
    /// another process's lock.
    owns_lock: bool,
}

/// Is `pid` a live process? Answered from `/proc`; on platforms without
/// procfs the question cannot be answered and the lock is treated as
/// stale (same-process correctness is preserved by the pid equality
/// check in [`ProvStore::open`]).
fn process_alive(pid: u32) -> bool {
    Path::new("/proc").is_dir() && Path::new(&format!("/proc/{pid}")).exists()
}

impl ProvStore {
    /// Open (creating if needed) a store rooted at `root`.
    ///
    /// The directory is guarded by a `store.lock` file holding the owner's
    /// pid: a second daemon attaching the same `--store` directory while
    /// the first is alive fails with [`PersistError::StoreLocked`] (stable
    /// error code `store-locked`) instead of silently interleaving writes.
    /// A lock left behind by a dead process — a daemon killed without
    /// unwinding — is detected as stale on restart and reclaimed, and a
    /// re-open from the *same* process (several platforms over one
    /// directory in one test binary) is allowed: the guard is against
    /// concurrent daemons, not re-entrant use.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, PersistError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let lock = root.join("store.lock");
        let own_pid = std::process::id();
        if let Ok(contents) = std::fs::read_to_string(&lock) {
            if let Ok(pid) = contents.trim().parse::<u32>() {
                if pid != own_pid && process_alive(pid) {
                    return Err(PersistError::StoreLocked {
                        path: root.display().to_string(),
                        pid,
                    });
                }
            }
        }
        write_atomic(&lock, &format!("{own_pid}\n"))?;
        Ok(ProvStore {
            root,
            marks: Mutex::new(HashMap::new()),
            owns_lock: true,
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn shard_dir(&self, exec_id: &str) -> PathBuf {
        // FNV-1a over the raw id bytes; stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in exec_id.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.root.join(format!("shard-{:02}", h % SHARDS))
    }

    fn doc_path(&self, exec_id: &str) -> PathBuf {
        self.shard_dir(exec_id).join(format!("{}.doc.xml", sanitise(exec_id)))
    }

    fn delta_path(&self, exec_id: &str) -> PathBuf {
        self.shard_dir(exec_id).join(format!("{}.delta", sanitise(exec_id)))
    }

    fn segment_path(&self, exec_id: &str, n: u64) -> PathBuf {
        self.shard_dir(exec_id).join(format!("{}.seg-{n}", sanitise(exec_id)))
    }

    fn snapshot_path(&self, exec_id: &str, epoch: u64) -> PathBuf {
        self.shard_dir(exec_id).join(format!("{}.snap-{epoch}", sanitise(exec_id)))
    }

    /// Does the store hold an execution with this id?
    pub fn contains(&self, exec_id: &str) -> bool {
        self.doc_path(exec_id).exists()
    }

    /// All execution ids present in the store, sorted.
    pub fn execution_ids(&self) -> Vec<String> {
        let mut ids = Vec::new();
        let Ok(shards) = std::fs::read_dir(&self.root) else {
            return ids;
        };
        for shard in shards.flatten() {
            let Ok(entries) = std::fs::read_dir(shard.path()) else {
                continue;
            };
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(stem) = name.strip_suffix(".doc.xml") {
                    if let Some(id) = unsanitise(stem) {
                        ids.push(id);
                    }
                }
            }
        }
        ids.sort();
        ids
    }

    /// Families of on-disk files for `exec_id`, split by kind:
    /// `(segment numbers, snapshot epochs, delta exists)`.
    fn scan_files(&self, exec_id: &str) -> (Vec<u64>, Vec<u64>, bool) {
        let stem = sanitise(exec_id);
        let mut segs = Vec::new();
        let mut snaps = Vec::new();
        let mut delta = false;
        if let Ok(entries) = std::fs::read_dir(self.shard_dir(exec_id)) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                let Some(rest) = name.strip_prefix(&stem) else {
                    continue;
                };
                if let Some(n) = rest.strip_prefix(".seg-").and_then(|n| n.parse().ok()) {
                    segs.push(n);
                } else if let Some(e) = rest.strip_prefix(".snap-").and_then(|e| e.parse().ok()) {
                    snaps.push(e);
                } else if rest == ".delta" {
                    delta = true;
                }
            }
        }
        segs.sort_unstable();
        snaps.sort_unstable();
        (segs, snaps, delta)
    }

    /// Read the full log for `exec_id`: sealed segments in base order plus
    /// the delta, skipping ranges a merged segment already covers.
    fn read_log(&self, exec_id: &str) -> Result<(Vec<SegmentData>, Option<SegmentData>), PersistError> {
        let (seg_nums, _, has_delta) = self.scan_files(exec_id);
        let mut parts: Vec<(u64, SegmentData)> = Vec::with_capacity(seg_nums.len());
        for n in &seg_nums {
            parts.push((*n, segment::read(&self.segment_path(exec_id, *n))?));
        }
        // Base order; at equal base the *widest* segment wins (it is the
        // merged one), and narrower duplicates are skipped below.
        parts.sort_by(|a, b| {
            (a.1.base, std::cmp::Reverse(a.1.calls.len()))
                .cmp(&(b.1.base, std::cmp::Reverse(b.1.calls.len())))
        });
        let mut live_parts: Vec<SegmentData> = Vec::new();
        let mut position = 0usize;
        for (n, part) in parts {
            if part.end() <= position {
                continue; // fully covered by a merged predecessor
            }
            if part.base > position {
                return Err(PersistError::Truncated {
                    file: self.segment_path(exec_id, n).display().to_string(),
                    message: format!(
                        "log gap: segment starts at call {} but only {position} calls are covered",
                        part.base
                    ),
                });
            }
            if part.base < position {
                return Err(PersistError::Truncated {
                    file: self.segment_path(exec_id, n).display().to_string(),
                    message: format!(
                        "log overlap: segment starts at call {} inside covered range {position}",
                        part.base
                    ),
                });
            }
            position = part.end();
            live_parts.push(part);
        }
        let delta = if has_delta {
            let d = segment::read(&self.delta_path(exec_id))?;
            if d.end() <= position && d.calls.is_empty() && d.links.is_empty() {
                None
            } else if d.base > position {
                return Err(PersistError::Truncated {
                    file: self.delta_path(exec_id).display().to_string(),
                    message: format!(
                        "log gap: delta starts at call {} but only {position} calls are covered",
                        d.base
                    ),
                });
            } else if d.base < position {
                // stale delta already folded by a crash-interrupted
                // compaction; its contents are in the sealed segments
                None
            } else {
                Some(d)
            }
        } else {
            None
        };
        Ok((live_parts, delta))
    }

    /// Load (or lazily rebuild) the persisted-state mark for `exec_id`.
    /// Caller holds the marks lock; the mark is rebuilt by reading the log.
    fn ensure_mark(
        &self,
        marks: &mut HashMap<String, Mark>,
        exec_id: &str,
    ) -> Result<(), PersistError> {
        let mark = marks.entry(exec_id.to_string()).or_default();
        if mark.scanned {
            return Ok(());
        }
        let (seg_nums, snaps, _) = self.scan_files(exec_id);
        let (segs, delta) = self.read_log(exec_id)?;
        let mut rebuilt = Mark {
            segments: seg_nums,
            snapshot_epoch: snaps.last().copied(),
            scanned: true,
            ..Mark::default()
        };
        for s in &segs {
            rebuilt.sealed_calls += s.calls.len();
            for (f, t) in &s.links {
                rebuilt.link_keys.insert((f.clone(), t.clone()));
            }
        }
        if let Some(d) = &delta {
            rebuilt.delta_calls = d.calls.len();
            for (f, t) in &d.links {
                rebuilt.link_keys.insert((f.clone(), t.clone()));
            }
        }
        *mark = rebuilt;
        Ok(())
    }

    /// Write-through one execution: the document, any new tail of the
    /// trace/link log (as a delta append), and the current epoch snapshot.
    /// Idempotent — saving unchanged state writes only the document.
    pub fn save(
        &self,
        exec_id: &str,
        doc: &Document,
        trace: &ExecutionTrace,
        graph: &ProvenanceGraph,
        epoch: u64,
        live: bool,
    ) -> Result<(), PersistError> {
        std::fs::create_dir_all(self.shard_dir(exec_id))?;
        write_atomic(&self.doc_path(exec_id), &to_xml_string(&doc.view()))?;

        let mut marks = self.marks.lock().expect("store marks poisoned");
        self.ensure_mark(&mut marks, exec_id)?;
        let mark = marks.get_mut(exec_id).expect("mark just ensured");

        let persisted = mark.sealed_calls + mark.delta_calls;
        let new_calls: Vec<SegmentCall> = trace.calls[persisted.min(trace.calls.len())..]
            .iter()
            .map(|c| segment_call(doc, c))
            .collect();
        let new_links: Vec<(String, String)> = graph
            .links
            .iter()
            .filter(|l| !mark.link_keys.contains(&(l.from_uri.clone(), l.to_uri.clone())))
            .map(|l| (l.from_uri.clone(), l.to_uri.clone()))
            .collect();

        if !new_calls.is_empty() || !new_links.is_empty() {
            // Rebuild the delta file: previous unsealed tail + the news.
            // A delta whose base disagrees with the sealed call count is
            // stale (crash-interrupted compaction); start a fresh one.
            let mut delta = if self.delta_path(exec_id).exists() {
                let d = segment::read(&self.delta_path(exec_id))?;
                if d.base == mark.sealed_calls {
                    d
                } else {
                    SegmentData { base: mark.sealed_calls, ..SegmentData::default() }
                }
            } else {
                SegmentData { base: mark.sealed_calls, ..SegmentData::default() }
            };
            delta.calls.extend(new_calls.iter().cloned());
            delta.links.extend(new_links.iter().cloned());
            segment::write(&self.delta_path(exec_id), exec_id, &delta)?;
            mark.delta_calls += new_calls.len();
            for (f, t) in &new_links {
                mark.link_keys.insert((f.clone(), t.clone()));
            }
            DELTA_APPENDS.inc();
        }

        if mark.snapshot_epoch != Some(epoch) {
            let snap = SnapshotData { epoch, calls: trace.len(), live, graph: graph.clone() };
            self.snapshot_write(exec_id, &snap, mark)?;
        }
        Ok(())
    }

    fn snapshot_write(
        &self,
        exec_id: &str,
        snap: &SnapshotData,
        mark: &mut Mark,
    ) -> Result<(), PersistError> {
        snapshot::write(&self.snapshot_path(exec_id, snap.epoch), exec_id, snap)?;
        SNAPSHOTS.inc();
        // Drop superseded snapshots; only the newest answers queries.
        let (_, snaps, _) = self.scan_files(exec_id);
        for e in snaps {
            if e != snap.epoch {
                let _ = std::fs::remove_file(self.snapshot_path(exec_id, e));
            }
        }
        mark.snapshot_epoch = Some(snap.epoch);
        Ok(())
    }

    /// Cold-load an execution: document, replayed trace, logged links, and
    /// the newest snapshot if it covers the whole trace. Returns
    /// `Ok(None)` if the store has no such execution.
    pub fn load(&self, exec_id: &str) -> Result<Option<StoredExecution>, PersistError> {
        let doc_path = self.doc_path(exec_id);
        let xml = match std::fs::read_to_string(&doc_path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let doc = parse_document(&xml).map_err(|e| PersistError::Xml(e.to_string()))?;

        let mut marks = self.marks.lock().expect("store marks poisoned");
        // Re-scan so the mark reflects disk even across processes.
        marks.remove(exec_id);
        self.ensure_mark(&mut marks, exec_id)?;
        let (segs, delta) = self.read_log(exec_id)?;

        let mut trace = ExecutionTrace::default();
        let mut links = Vec::new();
        let mut push_part = |part: &SegmentData| -> Result<(), PersistError> {
            for c in &part.calls {
                trace.calls.push(call_record(&doc, c)?);
            }
            for (f, t) in &part.links {
                links.push(resolve_link(&doc, f, t)?);
            }
            Ok(())
        };
        for s in &segs {
            push_part(s)?;
        }
        if let Some(d) = &delta {
            push_part(d)?;
        }

        let snapshot = match marks.get(exec_id).and_then(|m| m.snapshot_epoch) {
            Some(epoch) => {
                let snap = snapshot::read(&self.snapshot_path(exec_id, epoch))?;
                // A stale snapshot (crash between delta write and snapshot
                // write) is discarded; the caller rebuilds from the log.
                (snap.calls == trace.len()).then_some(snap)
            }
            None => None,
        };
        COLD_LOADS.inc();
        Ok(Some(StoredExecution { doc, trace, links, snapshot }))
    }

    /// Seal the delta into a fresh segment, then fold sealed segments into
    /// one once more than [`MAX_SEGMENTS`] exist. Returns `true` if any
    /// file changed.
    pub fn compact(&self, exec_id: &str) -> Result<bool, PersistError> {
        let mut marks = self.marks.lock().expect("store marks poisoned");
        self.ensure_mark(&mut marks, exec_id)?;
        let mark = marks.get_mut(exec_id).expect("mark just ensured");
        let mut changed = false;

        let (_, delta) = self.read_log(exec_id)?;
        if let Some(delta) = delta {
            if !delta.calls.is_empty() || !delta.links.is_empty() {
                let next = mark.segments.last().copied().unwrap_or(0) + 1;
                segment::write(&self.segment_path(exec_id, next), exec_id, &delta)?;
                let _ = std::fs::remove_file(self.delta_path(exec_id));
                mark.segments.push(next);
                mark.sealed_calls += delta.calls.len();
                mark.delta_calls = 0;
                SEGMENTS.inc();
                COMPACTIONS.inc();
                changed = true;
            }
        }

        if mark.segments.len() > MAX_SEGMENTS {
            let (segs, _) = self.read_log(exec_id)?;
            let mut merged = SegmentData::default();
            for s in segs {
                merged.calls.extend(s.calls);
                merged.links.extend(s.links);
            }
            let next = mark.segments.last().copied().unwrap_or(0) + 1;
            segment::write(&self.segment_path(exec_id, next), exec_id, &merged)?;
            // Unlink the inputs only after the merged segment is durable;
            // a crash in between leaves duplicates the reader skips.
            for n in std::mem::take(&mut mark.segments) {
                let _ = std::fs::remove_file(self.segment_path(exec_id, n));
            }
            mark.segments = vec![next];
            SEGMENTS.inc();
            changed = true;
        }
        Ok(changed)
    }

    /// Run [`compact`](Self::compact) over every stored execution.
    /// Returns how many executions changed on disk.
    pub fn compact_all(&self) -> Result<usize, PersistError> {
        let mut changed = 0;
        for id in self.execution_ids() {
            if self.compact(&id)? {
                changed += 1;
            }
        }
        Ok(changed)
    }
}

impl Drop for ProvStore {
    /// Release the directory lock — but only if this process still owns
    /// it (a crashed-then-restarted daemon may have reclaimed a stale
    /// lock this handle once held).
    fn drop(&mut self) {
        if !self.owns_lock {
            return;
        }
        let lock = self.root.join("store.lock");
        let ours = std::fs::read_to_string(&lock)
            .ok()
            .and_then(|c| c.trim().parse::<u32>().ok())
            .map(|pid| pid == std::process::id())
            .unwrap_or(false);
        if ours {
            let _ = std::fs::remove_file(&lock);
        }
    }
}

/// Project a [`CallRecord`] to its storable form, produced nodes resolved
/// to URIs through the document.
fn segment_call(doc: &Document, c: &CallRecord) -> SegmentCall {
    SegmentCall {
        service: c.service.clone(),
        time: c.time,
        input: (c.input.node_count(), c.input.resource_count()),
        output: (c.output.node_count(), c.output.resource_count()),
        channel: c.channel.clone(),
        produced: c
            .produced
            .iter()
            .filter_map(|&n| doc.resource(n).map(|m| m.uri.clone()))
            .collect(),
    }
}

/// Rehydrate a stored call against the reloaded document.
fn call_record(doc: &Document, c: &SegmentCall) -> Result<CallRecord, PersistError> {
    let produced = c
        .produced
        .iter()
        .map(|u| {
            doc.node_by_uri(u).ok_or_else(|| PersistError::Trace {
                line: 0,
                message: format!("produced uri {u:?} not in document"),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CallRecord {
        service: c.service.clone(),
        time: c.time,
        input: c.input_mark(),
        output: c.output_mark(),
        produced,
        channel: c.channel.clone(),
    })
}

fn resolve_link(doc: &Document, from: &str, to: &str) -> Result<ProvLink, PersistError> {
    let resolve = |uri: &str| {
        doc.node_by_uri(uri).ok_or_else(|| PersistError::Trace {
            line: 0,
            message: format!("link uri {uri:?} not in document"),
        })
    };
    Ok(ProvLink {
        from: resolve(from)?,
        from_uri: from.to_string(),
        to: resolve(to)?,
        to_uri: to.to_string(),
    })
}

#[cfg(test)]
mod tests;
