//! Sealed segments and the live delta: the append-only trace/link log.
//!
//! A segment file holds a contiguous run of an execution's calls plus the
//! provenance links first derived while those calls were the frontier. The
//! format is line-based like the rest of the persist layer, but URIs are
//! dictionary-encoded: each distinct URI is written once as a `uri:` line
//! and referenced everywhere else by its 0-based position, mirroring the
//! interning scheme of `weblab-rdf`'s dictionary (URIs repeat heavily
//! across calls and links, so the dictionary keeps segments compact and
//! makes link rows fixed-width integer pairs).
//!
//! ```text
//! # weblab prov segment
//! exec: exec%2F1
//! base: 0
//! uri: weblab://doc/1%2C0
//! uri: weblab://doc/1%2C1
//! call: Normaliser | 1 | 0,0 | 12,5 |  | 0,1
//! link: 1 0
//! # end uris=2 calls=1 links=1
//! ```
//!
//! `base:` is the absolute index of the segment's first call in the
//! execution's trace. Readers order segments by base and skip any whose
//! range is already covered — that makes replay immune to the one benign
//! duplication compaction can leave behind (a crash after writing a merged
//! segment but before deleting its inputs). Every file ends in a `# end`
//! footer checked on load; a mismatch surfaces as
//! [`PersistError::Truncated`](crate::persist::PersistError::Truncated).

use std::path::Path;

use crate::persist::{escape_field, unescape_field, write_atomic, PersistError};
use weblab_xml::{StateMark, Timestamp};

/// One call as stored in a segment: like
/// [`CallRecord`](weblab_prov::CallRecord) but with produced resources
/// identified by URI, so the record is meaningful without a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentCall {
    /// Service name.
    pub service: String,
    /// Call instant.
    pub time: Timestamp,
    /// Input state mark counters `(nodes, resources)`.
    pub input: (usize, usize),
    /// Output state mark counters.
    pub output: (usize, usize),
    /// Channel annotation.
    pub channel: String,
    /// URIs of the resources the call produced.
    pub produced: Vec<String>,
}

impl SegmentCall {
    /// The input mark as a [`StateMark`].
    pub fn input_mark(&self) -> StateMark {
        StateMark::from_counts(self.input.0, self.input.1)
    }

    /// The output mark as a [`StateMark`].
    pub fn output_mark(&self) -> StateMark {
        StateMark::from_counts(self.output.0, self.output.1)
    }
}

/// Decoded contents of one segment (or delta) file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentData {
    /// Absolute index of the first call in the execution's trace.
    pub base: usize,
    /// Calls covered by this segment, in trace order.
    pub calls: Vec<SegmentCall>,
    /// `(from_uri, to_uri)` provenance links first derived in this range.
    pub links: Vec<(String, String)>,
}

impl SegmentData {
    /// Absolute index one past the last call this segment covers.
    pub fn end(&self) -> usize {
        self.base + self.calls.len()
    }
}

/// Serialise a segment to its line format.
pub fn encode(exec_id: &str, data: &SegmentData) -> String {
    // Intern URIs in first-use order so the dictionary reads
    // top-to-bottom like the data that references it.
    let mut order: Vec<String> = Vec::new();
    let mut ids: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut call_rows = Vec::with_capacity(data.calls.len());
    let mut link_rows = Vec::with_capacity(data.links.len());
    {
        let mut intern = |uri: &str| -> usize {
            if let Some(&id) = ids.get(uri) {
                id
            } else {
                let id = order.len();
                order.push(uri.to_string());
                ids.insert(uri.to_string(), id);
                id
            }
        };
        for c in &data.calls {
            let produced: Vec<String> =
                c.produced.iter().map(|u| intern(u).to_string()).collect();
            call_rows.push(format!(
                "call: {} | {} | {},{} | {},{} | {} | {}\n",
                escape_field(&c.service),
                c.time,
                c.input.0,
                c.input.1,
                c.output.0,
                c.output.1,
                escape_field(&c.channel),
                produced.join(",")
            ));
        }
        for (from, to) in &data.links {
            link_rows.push(format!("link: {} {}\n", intern(from), intern(to)));
        }
    }
    let mut out = String::new();
    out.push_str("# weblab prov segment\n");
    out.push_str(&format!("exec: {}\n", escape_field(exec_id)));
    out.push_str(&format!("base: {}\n", data.base));
    for uri in &order {
        out.push_str(&format!("uri: {}\n", escape_field(uri)));
    }
    for row in &call_rows {
        out.push_str(row);
    }
    for row in &link_rows {
        out.push_str(row);
    }
    out.push_str(&format!(
        "# end uris={} calls={} links={}\n",
        order.len(),
        data.calls.len(),
        data.links.len()
    ));
    out
}

/// Parse a segment file's text, verifying its integrity footer.
pub fn decode(file: &str, text: &str) -> Result<SegmentData, PersistError> {
    let mut uris: Vec<String> = Vec::new();
    let mut data = SegmentData::default();
    let mut base = None;
    let mut footer: Option<(usize, usize, usize)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let raw = raw.trim();
        let err = |message: String| PersistError::Trace { line, message };
        if let Some(rest) = raw.strip_prefix("# end ") {
            footer = parse_footer(rest);
        } else if raw.is_empty() || raw.starts_with('#') {
            continue;
        } else if let Some(v) = raw.strip_prefix("exec:") {
            // informational; the file's location already determines the id
            let _ = v;
        } else if let Some(v) = raw.strip_prefix("base:") {
            base = Some(
                v.trim()
                    .parse::<usize>()
                    .map_err(|_| err(format!("invalid base {v:?}")))?,
            );
        } else if let Some(v) = raw.strip_prefix("uri:") {
            uris.push(unescape_field(v.trim()).map_err(err)?);
        } else if let Some(rest) = raw.strip_prefix("call:") {
            let parts: Vec<&str> = rest.split('|').map(str::trim).collect();
            if parts.len() != 6 {
                return Err(err(format!("expected 6 fields, found {}", parts.len())));
            }
            let counters = |s: &str| -> Result<(usize, usize), PersistError> {
                let (n, r) = s
                    .split_once(',')
                    .ok_or_else(|| err(format!("expected 'nodes,resources', found {s:?}")))?;
                Ok((
                    n.trim().parse().map_err(|_| err(format!("invalid counter {n:?}")))?,
                    r.trim().parse().map_err(|_| err(format!("invalid counter {r:?}")))?,
                ))
            };
            let produced = if parts[5].is_empty() {
                Vec::new()
            } else {
                parts[5]
                    .split(',')
                    .map(|u| {
                        let id: usize = u
                            .trim()
                            .parse()
                            .map_err(|_| err(format!("invalid uri id {u:?}")))?;
                        uris.get(id)
                            .cloned()
                            .ok_or_else(|| err(format!("uri id {id} out of range")))
                    })
                    .collect::<Result<Vec<_>, _>>()?
            };
            data.calls.push(SegmentCall {
                service: unescape_field(parts[0]).map_err(err)?,
                time: parts[1]
                    .parse()
                    .map_err(|_| err(format!("invalid time {:?}", parts[1])))?,
                input: counters(parts[2])?,
                output: counters(parts[3])?,
                channel: unescape_field(parts[4]).map_err(err)?,
                produced,
            });
        } else if let Some(rest) = raw.strip_prefix("link:") {
            let mut it = rest.split_whitespace();
            let mut next_uri = || -> Result<String, PersistError> {
                let id: usize = it
                    .next()
                    .ok_or_else(|| err("expected 'link: from to'".into()))?
                    .parse()
                    .map_err(|_| err("invalid link uri id".into()))?;
                uris.get(id)
                    .cloned()
                    .ok_or_else(|| err(format!("uri id {id} out of range")))
            };
            let from = next_uri()?;
            let to = next_uri()?;
            data.links.push((from, to));
        } else {
            return Err(err(format!("unrecognised line {raw:?}")));
        }
    }
    let (u, c, l) = footer.ok_or_else(|| PersistError::Truncated {
        file: file.into(),
        message: "missing '# end uris=U calls=C links=L' footer (file truncated?)".into(),
    })?;
    if u != uris.len() || c != data.calls.len() || l != data.links.len() {
        return Err(PersistError::Truncated {
            file: file.into(),
            message: format!(
                "footer claims uris={u} calls={c} links={l} but file holds uris={} calls={} links={}",
                uris.len(),
                data.calls.len(),
                data.links.len()
            ),
        });
    }
    data.base = base.ok_or_else(|| PersistError::Truncated {
        file: file.into(),
        message: "missing 'base:' header".into(),
    })?;
    Ok(data)
}

fn parse_footer(rest: &str) -> Option<(usize, usize, usize)> {
    let mut u = None;
    let mut c = None;
    let mut l = None;
    for part in rest.split_whitespace() {
        let (k, v) = part.split_once('=')?;
        let v: usize = v.parse().ok()?;
        match k {
            "uris" => u = Some(v),
            "calls" => c = Some(v),
            "links" => l = Some(v),
            _ => return None,
        }
    }
    Some((u?, c?, l?))
}

/// Write a segment to `path` atomically.
pub fn write(path: &Path, exec_id: &str, data: &SegmentData) -> Result<(), PersistError> {
    write_atomic(path, &encode(exec_id, data))
}

/// Read the segment at `path`, verifying its footer.
pub fn read(path: &Path) -> Result<SegmentData, PersistError> {
    let text = std::fs::read_to_string(path)?;
    decode(&path.display().to_string(), &text)
}
