//! Epoch-keyed on-disk index snapshots.
//!
//! A snapshot file serialises one published
//! [`EpochSnapshot`](weblab_prov::EpochSnapshot)'s provenance graph —
//! sources in registration order, links in stored order, node ids as raw
//! arena indices — plus the epoch and call count it was published at. The
//! [`ReachabilityIndex`](weblab_prov::ReachabilityIndex) itself is *not*
//! stored: `ReachabilityIndex::from_graph` is deterministic in the graph's
//! row order, so rebuilding it on load reproduces byte-identical query
//! answers, and the epoch travels with the file so a cold-loaded execution
//! republishes at exactly the epoch its answers were minted at.
//!
//! Node ids are stored as the *original* arena indices rather than
//! re-resolved against the reloaded document: XML serialisation is
//! pre-order, so a reloaded arena can renumber nodes, and the index's
//! adjacency ordering depends on the numeric node ids. Keeping the
//! original ids keeps answers stable; the graph's URIs remain the join key
//! to the document.
//!
//! ```text
//! # weblab prov snapshot
//! exec: exec%2F1
//! epoch: 3
//! calls: 4
//! live: 1
//! uri: weblab://doc/1%2C0
//! source: 2 | 0 | Normaliser | 1
//! link: 5 1 2 0
//! # end uris=1 sources=1 links=1
//! ```

use std::path::Path;

use crate::persist::{escape_field, unescape_field, write_atomic, PersistError};
use weblab_prov::{ProvLink, ProvenanceGraph, SourceEntry};
use weblab_xml::{CallLabel, NodeId};

/// Decoded contents of a snapshot file.
#[derive(Debug, Clone)]
pub struct SnapshotData {
    /// Epoch the snapshot was published at.
    pub epoch: u64,
    /// Calls folded into the snapshot (freshness witness).
    pub calls: usize,
    /// Whether live maintenance was enabled when the snapshot was taken.
    pub live: bool,
    /// The provenance graph, row orders preserved verbatim.
    pub graph: ProvenanceGraph,
}

/// Serialise a snapshot to its line format.
pub fn encode(exec_id: &str, data: &SnapshotData) -> String {
    let mut order: Vec<String> = Vec::new();
    let mut ids: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut source_rows = Vec::with_capacity(data.graph.sources.len());
    let mut link_rows = Vec::with_capacity(data.graph.links.len());
    {
        let mut intern = |uri: &str| -> usize {
            if let Some(&id) = ids.get(uri) {
                id
            } else {
                let id = order.len();
                order.push(uri.to_string());
                ids.insert(uri.to_string(), id);
                id
            }
        };
        for s in &data.graph.sources {
            source_rows.push(format!(
                "source: {} | {} | {} | {}\n",
                s.node.index(),
                intern(&s.uri),
                escape_field(&s.label.service),
                s.label.time
            ));
        }
        for l in &data.graph.links {
            link_rows.push(format!(
                "link: {} {} {} {}\n",
                l.from.index(),
                intern(&l.from_uri),
                l.to.index(),
                intern(&l.to_uri)
            ));
        }
    }
    let mut out = String::new();
    out.push_str("# weblab prov snapshot\n");
    out.push_str(&format!("exec: {}\n", escape_field(exec_id)));
    out.push_str(&format!("epoch: {}\n", data.epoch));
    out.push_str(&format!("calls: {}\n", data.calls));
    out.push_str(&format!("live: {}\n", u8::from(data.live)));
    for uri in &order {
        out.push_str(&format!("uri: {}\n", escape_field(uri)));
    }
    for row in &source_rows {
        out.push_str(row);
    }
    for row in &link_rows {
        out.push_str(row);
    }
    out.push_str(&format!(
        "# end uris={} sources={} links={}\n",
        order.len(),
        data.graph.sources.len(),
        data.graph.links.len()
    ));
    out
}

/// Parse a snapshot file's text, verifying its integrity footer.
pub fn decode(file: &str, text: &str) -> Result<SnapshotData, PersistError> {
    let mut uris: Vec<String> = Vec::new();
    let mut epoch = None;
    let mut calls = None;
    let mut live = false;
    let mut graph = ProvenanceGraph::default();
    let mut footer: Option<(usize, usize, usize)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let raw = raw.trim();
        let err = |message: String| PersistError::Trace { line, message };
        if let Some(rest) = raw.strip_prefix("# end ") {
            footer = parse_footer(rest);
        } else if raw.is_empty() || raw.starts_with('#') {
            continue;
        } else if let Some(v) = raw.strip_prefix("exec:") {
            let _ = v;
        } else if let Some(v) = raw.strip_prefix("epoch:") {
            epoch = Some(
                v.trim()
                    .parse::<u64>()
                    .map_err(|_| err(format!("invalid epoch {v:?}")))?,
            );
        } else if let Some(v) = raw.strip_prefix("calls:") {
            calls = Some(
                v.trim()
                    .parse::<usize>()
                    .map_err(|_| err(format!("invalid calls {v:?}")))?,
            );
        } else if let Some(v) = raw.strip_prefix("live:") {
            live = v.trim() == "1";
        } else if let Some(v) = raw.strip_prefix("uri:") {
            uris.push(unescape_field(v.trim()).map_err(err)?);
        } else if let Some(rest) = raw.strip_prefix("source:") {
            let parts: Vec<&str> = rest.split('|').map(str::trim).collect();
            if parts.len() != 4 {
                return Err(err(format!("expected 4 source fields, found {}", parts.len())));
            }
            let node: usize = parts[0]
                .parse()
                .map_err(|_| err(format!("invalid node index {:?}", parts[0])))?;
            let uri_id: usize = parts[1]
                .parse()
                .map_err(|_| err(format!("invalid uri id {:?}", parts[1])))?;
            let uri = uris
                .get(uri_id)
                .cloned()
                .ok_or_else(|| err(format!("uri id {uri_id} out of range")))?;
            let service = unescape_field(parts[2]).map_err(err)?;
            let time = parts[3]
                .parse()
                .map_err(|_| err(format!("invalid time {:?}", parts[3])))?;
            graph.sources.push(SourceEntry {
                node: NodeId::from_index(node),
                uri,
                label: CallLabel::new(service, time),
            });
        } else if let Some(rest) = raw.strip_prefix("link:") {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(err(format!("expected 4 link fields, found {}", fields.len())));
            }
            let num = |s: &str| -> Result<usize, PersistError> {
                s.parse().map_err(|_| err(format!("invalid link field {s:?}")))
            };
            let resolve = |id: usize| -> Result<String, PersistError> {
                uris.get(id)
                    .cloned()
                    .ok_or_else(|| err(format!("uri id {id} out of range")))
            };
            graph.links.push(ProvLink {
                from: NodeId::from_index(num(fields[0])?),
                from_uri: resolve(num(fields[1])?)?,
                to: NodeId::from_index(num(fields[2])?),
                to_uri: resolve(num(fields[3])?)?,
            });
        } else {
            return Err(err(format!("unrecognised line {raw:?}")));
        }
    }
    let (u, s, l) = footer.ok_or_else(|| PersistError::Truncated {
        file: file.into(),
        message: "missing '# end uris=U sources=S links=L' footer (file truncated?)".into(),
    })?;
    if u != uris.len() || s != graph.sources.len() || l != graph.links.len() {
        return Err(PersistError::Truncated {
            file: file.into(),
            message: format!(
                "footer claims uris={u} sources={s} links={l} but file holds uris={} sources={} links={}",
                uris.len(),
                graph.sources.len(),
                graph.links.len()
            ),
        });
    }
    let epoch = epoch.ok_or_else(|| PersistError::Truncated {
        file: file.into(),
        message: "missing 'epoch:' header".into(),
    })?;
    let calls = calls.ok_or_else(|| PersistError::Truncated {
        file: file.into(),
        message: "missing 'calls:' header".into(),
    })?;
    Ok(SnapshotData { epoch, calls, live, graph })
}

fn parse_footer(rest: &str) -> Option<(usize, usize, usize)> {
    let mut u = None;
    let mut s = None;
    let mut l = None;
    for part in rest.split_whitespace() {
        let (k, v) = part.split_once('=')?;
        let v: usize = v.parse().ok()?;
        match k {
            "uris" => u = Some(v),
            "sources" => s = Some(v),
            "links" => l = Some(v),
            _ => return None,
        }
    }
    Some((u?, s?, l?))
}

/// Write a snapshot to `path` atomically.
pub fn write(path: &Path, exec_id: &str, data: &SnapshotData) -> Result<(), PersistError> {
    write_atomic(path, &encode(exec_id, data))
}

/// Read the snapshot at `path`, verifying its footer.
pub fn read(path: &Path) -> Result<SnapshotData, PersistError> {
    let text = std::fs::read_to_string(path)?;
    decode(&path.display().to_string(), &text)
}
