use super::*;
use weblab_prov::{infer_provenance, EngineOptions, ReachabilityIndex, SourceEntry};
use weblab_workflow::generator::synthetic_workload;
use weblab_workflow::Orchestrator;

fn tmpstore(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("weblab-store-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn executed(seed: u64) -> (Document, ExecutionTrace, ProvenanceGraph) {
    let (mut doc, wf, rules) = synthetic_workload(seed, 4, 3, 4);
    let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
    let graph = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions::default());
    (doc, outcome.trace, graph)
}

#[test]
fn save_load_round_trips_trace_links_and_snapshot() {
    let (doc, trace, graph) = executed(21);
    let store = ProvStore::open(tmpstore("roundtrip")).unwrap();
    store.save("exec/1", &doc, &trace, &graph, 3, true).unwrap();

    let back = store.load("exec/1").unwrap().expect("stored");
    assert_eq!(to_xml_string(&back.doc.view()), to_xml_string(&doc.view()));
    assert_eq!(back.trace.len(), trace.len());
    for (a, b) in trace.calls.iter().zip(&back.trace.calls) {
        assert_eq!(a.service, b.service);
        assert_eq!(a.time, b.time);
        assert_eq!(a.channel, b.channel);
        assert_eq!(a.produced.len(), b.produced.len());
    }
    let pairs = |ls: &[ProvLink]| {
        let mut v: Vec<(String, String)> =
            ls.iter().map(|l| (l.from_uri.clone(), l.to_uri.clone())).collect();
        v.sort();
        v.dedup();
        v
    };
    assert_eq!(pairs(&back.links), pairs(&graph.links));

    let snap = back.snapshot.expect("fresh snapshot");
    assert_eq!(snap.epoch, 3);
    assert_eq!(snap.calls, trace.len());
    assert!(snap.live);
    // row orders preserved verbatim → identical index answers
    assert_eq!(snap.graph.links, graph.links);
    assert_eq!(snap.graph.sources.len(), graph.sources.len());
    let a = ReachabilityIndex::from_graph(&graph);
    let b = ReachabilityIndex::from_graph(&snap.graph);
    for s in &graph.sources {
        assert_eq!(a.why(&s.uri), b.why(&s.uri));
        assert_eq!(a.lineage(&s.uri, 8), b.lineage(&s.uri, 8));
        assert_eq!(a.impacted_by(&s.uri), b.impacted_by(&s.uri));
    }
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn ids_shard_and_never_collide() {
    let (doc_a, trace_a, graph_a) = executed(5);
    let (doc_b, trace_b, graph_b) = executed(17);
    let store = ProvStore::open(tmpstore("shard")).unwrap();
    store.save("exec/1", &doc_a, &trace_a, &graph_a, 1, false).unwrap();
    store.save("exec_1", &doc_b, &trace_b, &graph_b, 1, false).unwrap();
    assert_eq!(
        store.execution_ids(),
        vec!["exec/1".to_string(), "exec_1".to_string()]
    );
    let a = store.load("exec/1").unwrap().unwrap();
    let b = store.load("exec_1").unwrap().unwrap();
    assert_eq!(to_xml_string(&a.doc.view()), to_xml_string(&doc_a.view()));
    assert_eq!(to_xml_string(&b.doc.view()), to_xml_string(&doc_b.view()));
    assert_eq!(a.trace.len(), trace_a.len());
    assert_eq!(b.trace.len(), trace_b.len());
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn incremental_saves_append_only_the_tail() {
    let (doc, trace, graph) = executed(33);
    assert!(trace.len() >= 2, "workload too small for the test");
    let store = ProvStore::open(tmpstore("incremental")).unwrap();

    // Save a prefix first: pretend only the first call had happened.
    let mut prefix = ExecutionTrace::default();
    prefix.calls.push(trace.calls[0].clone());
    let empty = ProvenanceGraph::default();
    store.save("e", &doc, &prefix, &empty, 1, false).unwrap();
    // Then the full trace: the second save must only append the tail.
    store.save("e", &doc, &trace, &graph, 2, false).unwrap();

    let back = store.load("e").unwrap().unwrap();
    assert_eq!(back.trace.len(), trace.len());
    assert_eq!(back.snapshot.unwrap().epoch, 2);

    // Saving identical state again is a no-op for the log.
    let before = std::fs::read_to_string(
        store.delta_path("e"),
    )
    .unwrap();
    store.save("e", &doc, &trace, &graph, 2, false).unwrap();
    let after = std::fs::read_to_string(store.delta_path("e")).unwrap();
    assert_eq!(before, after);
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn compaction_seals_deltas_and_folds_segments() {
    let (doc, trace, graph) = executed(8);
    let store = ProvStore::open(tmpstore("compact")).unwrap();

    // Build the log one call at a time, sealing after each save, to force
    // many sealed segments.
    let mut partial = ExecutionTrace::default();
    for (i, c) in trace.calls.iter().enumerate() {
        partial.calls.push(c.clone());
        let g = if i + 1 == trace.len() { graph.clone() } else { ProvenanceGraph::default() };
        store.save("e", &doc, &partial, &g, i as u64 + 1, false).unwrap();
        assert!(store.compact("e").unwrap());
    }
    let (segs, _, has_delta) = store.scan_files("e");
    assert!(!has_delta, "compaction must consume the delta");
    assert!(
        segs.len() <= MAX_SEGMENTS + 1,
        "folding must bound the segment count, got {segs:?}"
    );

    let back = store.load("e").unwrap().unwrap();
    assert_eq!(back.trace.len(), trace.len());
    for (a, b) in trace.calls.iter().zip(&back.trace.calls) {
        assert_eq!(a.service, b.service);
        assert_eq!(a.time, b.time);
    }
    let mut logged: Vec<(String, String)> =
        back.links.iter().map(|l| (l.from_uri.clone(), l.to_uri.clone())).collect();
    logged.sort();
    logged.dedup();
    let mut expect: Vec<(String, String)> =
        graph.links.iter().map(|l| (l.from_uri.clone(), l.to_uri.clone())).collect();
    expect.sort();
    expect.dedup();
    assert_eq!(logged, expect);

    // compact_all over an already-compacted store changes nothing
    assert_eq!(store.compact_all().unwrap(), 0);
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn a_new_store_handle_reads_what_another_wrote() {
    // Simulates a process restart: a second ProvStore over the same root
    // must see everything, including correct delta-append behaviour.
    let (doc, trace, graph) = executed(55);
    let root = tmpstore("restart");
    {
        let store = ProvStore::open(&root).unwrap();
        store.save("e", &doc, &trace, &graph, 4, true).unwrap();
        store.compact("e").unwrap();
    }
    let store = ProvStore::open(&root).unwrap();
    assert!(store.contains("e"));
    let back = store.load("e").unwrap().unwrap();
    assert_eq!(back.trace.len(), trace.len());
    let snap = back.snapshot.unwrap();
    assert_eq!(snap.epoch, 4);
    assert!(snap.live);
    assert_eq!(snap.graph.links, graph.links);
    // a further identical save through the new handle appends nothing
    store.save("e", &doc, &trace, &graph, 4, true).unwrap();
    assert!(!store.delta_path("e").exists());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn truncated_segment_delta_and_snapshot_are_detected() {
    let (doc, trace, graph) = executed(13);
    let store = ProvStore::open(tmpstore("truncate")).unwrap();
    store.save("e", &doc, &trace, &graph, 2, false).unwrap();
    store.compact("e").unwrap();
    // re-open a delta by saving one more "call-less" link-only state
    let mut extended = graph.clone();
    let extra = ProvLink {
        from: graph.links[0].from,
        from_uri: graph.links[0].from_uri.clone(),
        to: graph.links[graph.links.len() - 1].to,
        to_uri: graph.links[graph.links.len() - 1].to_uri.clone(),
    };
    if !extended.links.contains(&extra) {
        extended.links.push(extra);
    }
    store.save("e", &doc, &trace, &extended, 3, false).unwrap();

    let seg = store.segment_path("e", 1);
    let delta = store.delta_path("e");
    let snap = store.snapshot_path("e", 3);
    for path in [&seg, &delta, &snap] {
        assert!(path.exists(), "expected {path:?} on disk");
        let full = std::fs::read_to_string(path).unwrap();

        // kill the footer: the file must be rejected as truncated
        let lines: Vec<&str> = full.lines().collect();
        std::fs::write(path, lines[..lines.len() - 1].join("\n") + "\n").unwrap();
        match store.load("e") {
            Err(PersistError::Truncated { .. }) => {}
            other => panic!("expected Truncated for {path:?}, got {other:?}"),
        }

        // a lying footer (dropped body line, kept footer) is also caught
        if lines.len() >= 3 {
            let mut bad: Vec<&str> = lines[..lines.len() - 2].to_vec();
            bad.push(lines[lines.len() - 1]);
            std::fs::write(path, bad.join("\n") + "\n").unwrap();
            match store.load("e") {
                Err(PersistError::Truncated { .. }) | Err(PersistError::Trace { .. }) => {}
                other => panic!("expected rejection for {path:?}, got {other:?}"),
            }
        }
        std::fs::write(path, &full).unwrap();
    }
    // intact again: loads fine
    assert!(store.load("e").unwrap().is_some());
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn hostile_ids_and_uris_round_trip_through_the_store() {
    let mut doc = Document::new("Resource");
    let root = doc.root();
    let d0 = doc.mark();
    let n1 = doc.append_element(root, "A").unwrap();
    doc.register_resource(n1, "u,r|i %1", Some(weblab_xml::CallLabel::new("S|1", 1))).unwrap();
    let d1 = doc.mark();
    let n2 = doc.append_element(root, "B").unwrap();
    doc.register_resource(n2, "plain", Some(weblab_xml::CallLabel::new("S,2", 2))).unwrap();
    let d2 = doc.mark();
    let mut trace = ExecutionTrace::default();
    trace.record_call_on_channel(&doc, "S|1", 1, d0, d1, "ch|an");
    trace.record_call_on_channel(&doc, "S,2", 2, d1, d2, "");
    let graph = ProvenanceGraph {
        sources: vec![
            SourceEntry {
                node: n1,
                uri: "u,r|i %1".into(),
                label: weblab_xml::CallLabel::new("S|1", 1),
            },
            SourceEntry {
                node: n2,
                uri: "plain".into(),
                label: weblab_xml::CallLabel::new("S,2", 2),
            },
        ],
        links: vec![ProvLink {
            from: n2,
            from_uri: "plain".into(),
            to: n1,
            to_uri: "u,r|i %1".into(),
        }],
    };

    let store = ProvStore::open(tmpstore("hostile")).unwrap();
    let id = "exec id/with|hostile,chars%";
    store.save(id, &doc, &trace, &graph, 1, false).unwrap();
    store.compact(id).unwrap();
    assert_eq!(store.execution_ids(), vec![id.to_string()]);

    let back = store.load(id).unwrap().unwrap();
    assert_eq!(back.trace.calls[0].service, "S|1");
    assert_eq!(back.trace.calls[0].channel, "ch|an");
    assert_eq!(back.trace.calls[1].service, "S,2");
    assert_eq!(back.links, graph.links);
    let snap = back.snapshot.unwrap();
    assert_eq!(snap.graph.links, graph.links);
    assert_eq!(snap.graph.sources[0].uri, "u,r|i %1");
    assert_eq!(snap.graph.sources[0].label.service, "S|1");
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn segment_encode_decode_is_stable() {
    let data = SegmentData {
        base: 7,
        calls: vec![SegmentCall {
            service: "A | B".into(),
            time: 9,
            input: (3, 1),
            output: (5, 2),
            channel: "0.1".into(),
            produced: vec!["u1".into(), "u,2".into()],
        }],
        links: vec![("u,2".into(), "u1".into())],
    };
    let text = segment::encode("e", &data);
    let back = segment::decode("mem", &text).unwrap();
    assert_eq!(back, data);
    // dictionary actually deduplicates: each distinct uri appears once
    assert_eq!(text.matches("uri: ").count(), 2);
}

#[test]
fn lock_file_guards_against_a_second_live_owner() {
    let root = tmpstore("lock");
    let lock = {
        let store = ProvStore::open(&root).unwrap();
        let lock = store.root().join("store.lock");
        // opening claims the lock with our pid
        let owner: u32 = std::fs::read_to_string(&lock).unwrap().trim().parse().unwrap();
        assert_eq!(owner, std::process::id());
        // a reopen from the same process is allowed (it is not a second daemon)
        let again = ProvStore::open(&root).unwrap();
        drop(again);
        lock
    };
    // a lock owned by a DIFFERENT live process (pid 1 is always running on
    // Linux) must refuse the open with the stable store-locked error
    std::fs::write(&lock, "1\n").unwrap();
    match ProvStore::open(&root) {
        Err(PersistError::StoreLocked { pid, .. }) => assert_eq!(pid, 1),
        Err(other) => panic!("expected StoreLocked, got {other}"),
        Ok(_) => panic!("expected StoreLocked, got a successful open"),
    }
    // a stale lock from a dead process is reclaimed on restart (the common
    // case after a daemon was killed without unwinding)
    std::fs::write(&lock, format!("{}\n", u32::MAX)).unwrap();
    let store = ProvStore::open(&root).unwrap();
    let owner: u32 = std::fs::read_to_string(&lock).unwrap().trim().parse().unwrap();
    assert_eq!(owner, std::process::id());
    // dropping the owner releases the lock
    drop(store);
    assert!(!lock.exists());
    // garbage in the lock file never wedges the store
    std::fs::create_dir_all(&root).unwrap();
    std::fs::write(&lock, "not-a-pid\n").unwrap();
    let store = ProvStore::open(&root).unwrap();
    drop(store);
    let _ = std::fs::remove_dir_all(&root);
}
