//! Durable execution storage.
//!
//! Executions persist as two plain files per execution id inside a
//! directory:
//!
//! * `<id>.xml` — the stamped WebLab document (resource metadata carried by
//!   the `wl:id`/`wl:s`/`wl:t` attributes, so the file is self-contained);
//! * `<id>.trace` — the execution trace in a line format mirroring the
//!   Service Catalog's style:
//!
//! ```text
//! call: Normaliser | 1 | 0,0 | 12,5 |  | weblab://res/a,weblab://res/b
//! #       service    time  in     out  chan produced uris
//! ```
//!
//! State marks serialise as `nodes,resources` counter pairs. A caveat
//! applies after reload: XML serialisation is pre-order, so the reloaded
//! arena's node ids follow document order, which can differ from the
//! original creation order when later calls appended under earlier
//! parents. The counters remain correct as *sizes*, but per-call
//! `StateReplay` over a reloaded execution is not guaranteed to see the
//! exact historical states; use the posthoc strategies
//! (`TemporalRewrite`, `GroupedSinglePass`) on reloaded executions — they
//! depend only on labels and the final state, exactly like
//! `ExecutionTrace::reconstruct_from`.

use std::fmt;
use std::path::{Path, PathBuf};

use weblab_prov::{CallRecord, ExecutionTrace};
use weblab_xml::{parse_document, to_xml_string, Document, StateMark};

/// Persistence failure.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The document file failed to parse.
    Xml(String),
    /// The trace file is malformed.
    Trace {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Xml(m) => write!(f, "document error: {m}"),
            PersistError::Trace { line, message } => {
                write!(f, "trace format error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn mark_to_string(m: StateMark) -> String {
    format!("{},{}", m.node_count(), m.resource_count())
}

fn mark_from_str(s: &str, line: usize) -> Result<StateMark, PersistError> {
    let (n, r) = s.split_once(',').ok_or(PersistError::Trace {
        line,
        message: format!("expected 'nodes,resources', found {s:?}"),
    })?;
    let parse = |v: &str| {
        v.trim().parse::<usize>().map_err(|_| PersistError::Trace {
            line,
            message: format!("invalid counter {v:?}"),
        })
    };
    Ok(StateMark::from_counts(parse(n)?, parse(r)?))
}

/// Serialise a trace to the line format.
pub fn trace_to_text(doc: &Document, trace: &ExecutionTrace) -> String {
    let mut out = String::new();
    for c in &trace.calls {
        let uris: Vec<&str> = c
            .produced
            .iter()
            .filter_map(|&n| doc.resource(n).map(|m| m.uri.as_str()))
            .collect();
        out.push_str(&format!(
            "call: {} | {} | {} | {} | {} | {}\n",
            c.service,
            c.time,
            mark_to_string(c.input),
            mark_to_string(c.output),
            c.channel,
            uris.join(",")
        ));
    }
    out
}

/// Parse a trace from the line format, resolving produced URIs against the
/// document.
pub fn trace_from_text(doc: &Document, text: &str) -> Result<ExecutionTrace, PersistError> {
    let mut trace = ExecutionTrace::default();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let raw = raw.trim();
        if raw.is_empty() || raw.starts_with('#') {
            continue;
        }
        let rest = raw.strip_prefix("call:").ok_or(PersistError::Trace {
            line,
            message: "expected 'call:' prefix".into(),
        })?;
        let parts: Vec<&str> = rest.split('|').map(str::trim).collect();
        if parts.len() != 6 {
            return Err(PersistError::Trace {
                line,
                message: format!("expected 6 fields, found {}", parts.len()),
            });
        }
        let time = parts[1].parse().map_err(|_| PersistError::Trace {
            line,
            message: format!("invalid time {:?}", parts[1]),
        })?;
        let produced = if parts[5].is_empty() {
            Vec::new()
        } else {
            parts[5]
                .split(',')
                .map(|u| {
                    doc.node_by_uri(u.trim()).ok_or(PersistError::Trace {
                        line,
                        message: format!("produced uri {u:?} not in document"),
                    })
                })
                .collect::<Result<Vec<_>, _>>()?
        };
        trace.calls.push(CallRecord {
            service: parts[0].to_string(),
            time,
            input: mark_from_str(parts[2], line)?,
            output: mark_from_str(parts[3], line)?,
            produced,
            channel: parts[4].to_string(),
        });
    }
    Ok(trace)
}

/// Write an execution (document + trace) into `dir`.
pub fn save_execution(
    dir: &Path,
    exec_id: &str,
    doc: &Document,
    trace: &ExecutionTrace,
) -> Result<(), PersistError> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(doc_path(dir, exec_id), to_xml_string(&doc.view()))?;
    std::fs::write(trace_path(dir, exec_id), trace_to_text(doc, trace))?;
    Ok(())
}

/// Load an execution written by [`save_execution`].
pub fn load_execution(
    dir: &Path,
    exec_id: &str,
) -> Result<(Document, ExecutionTrace), PersistError> {
    let xml = std::fs::read_to_string(doc_path(dir, exec_id))?;
    let doc = parse_document(&xml).map_err(|e| PersistError::Xml(e.to_string()))?;
    let text = std::fs::read_to_string(trace_path(dir, exec_id))?;
    let trace = trace_from_text(&doc, &text)?;
    Ok((doc, trace))
}

fn doc_path(dir: &Path, exec_id: &str) -> PathBuf {
    dir.join(format!("{}.xml", sanitise(exec_id)))
}

fn trace_path(dir: &Path, exec_id: &str) -> PathBuf {
    dir.join(format!("{}.trace", sanitise(exec_id)))
}

fn sanitise(id: &str) -> String {
    id.chars()
        .map(|c| if c.is_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblab_prov::{infer_provenance, EngineOptions};
    use weblab_workflow::generator::synthetic_workload;
    use weblab_workflow::Orchestrator;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("weblab-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_round_trip_preserves_inference() {
        let (mut doc, wf, rules) = synthetic_workload(21, 4, 3, 4);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let dir = tmpdir("roundtrip");
        save_execution(&dir, "exec/1", &doc, &outcome.trace).unwrap();
        let (doc2, trace2) = load_execution(&dir, "exec/1").unwrap();

        // structure identical
        assert_eq!(
            to_xml_string(&doc.view()),
            to_xml_string(&doc2.view())
        );
        // trace metadata identical (produced compared by uri)
        assert_eq!(outcome.trace.len(), trace2.len());
        for (a, b) in outcome.trace.calls.iter().zip(&trace2.calls) {
            assert_eq!(a.service, b.service);
            assert_eq!(a.time, b.time);
            assert_eq!(a.channel, b.channel);
            assert_eq!(a.produced.len(), b.produced.len());
        }
        // inference over the reloaded execution gives the same link pairs
        let opts = EngineOptions::default();
        let g1 = infer_provenance(&doc, &outcome.trace, &rules, &opts);
        let g2 = infer_provenance(&doc2, &trace2, &rules, &opts);
        let pairs = |g: &weblab_prov::ProvenanceGraph| {
            g.links
                .iter()
                .map(|l| (l.from_uri.clone(), l.to_uri.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(pairs(&g1), pairs(&g2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_text_round_trips_channels_and_marks() {
        let mut doc = Document::new("Resource");
        let root = doc.root();
        let d0 = doc.mark();
        let a = doc.append_element(root, "A").unwrap();
        doc.register_resource(a, "ra", Some(weblab_xml::CallLabel::new("S", 1)))
            .unwrap();
        let d1 = doc.mark();
        let mut trace = ExecutionTrace::default();
        trace.record_call_on_channel(&doc, "S", 1, d0, d1, "0.1");
        let text = trace_to_text(&doc, &trace);
        assert!(text.contains("| 0.1 |"));
        let back = trace_from_text(&doc, &text).unwrap();
        assert_eq!(back.calls[0].channel, "0.1");
        assert_eq!(back.calls[0].input.node_count(), d0.node_count());
        assert_eq!(back.calls[0].produced, vec![a]);
    }

    #[test]
    fn malformed_trace_lines_are_rejected_with_line_numbers() {
        let doc = Document::new("Resource");
        for (text, expect_line) in [
            ("garbage", 1),
            ("call: S | x | 0,0 | 0,0 |  | ", 1),
            ("call: S | 1 | 0 | 0,0 |  | ", 1),
            ("\n\ncall: S | 1 | 0,0 | 0,0 |  | missing://uri", 3),
        ] {
            match trace_from_text(&doc, text) {
                Err(PersistError::Trace { line, .. }) => assert_eq!(line, expect_line),
                other => panic!("expected trace error, got {other:?}"),
            }
        }
        // comments and blanks are fine
        assert!(trace_from_text(&doc, "# empty\n\n").unwrap().is_empty());
    }

    #[test]
    fn missing_files_error_cleanly() {
        let dir = tmpdir("missing");
        assert!(matches!(
            load_execution(&dir, "nope"),
            Err(PersistError::Io(_))
        ));
    }
}
