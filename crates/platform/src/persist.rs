//! Durable execution storage.
//!
//! Executions persist as two plain files per execution id inside a
//! directory:
//!
//! * `<id>.xml` — the stamped WebLab document (resource metadata carried by
//!   the `wl:id`/`wl:s`/`wl:t` attributes, so the file is self-contained);
//! * `<id>.trace` — the execution trace in a line format mirroring the
//!   Service Catalog's style:
//!
//! ```text
//! call: Normaliser | 1 | 0,0 | 12,5 |  | weblab://res/a,weblab://res/b
//! #       service    time  in     out  chan produced uris
//! ```
//!
//! ## Id escaping
//!
//! Execution ids become file names through an *injective* percent-style
//! escape: ASCII letters, digits, `-` and `_` pass through, every other
//! byte (including `%` itself, `/`, `.`, and non-ASCII bytes) becomes
//! `%XX` with an uppercase hex code. `exec/1` maps to `exec%2F1` while
//! `exec_1` stays `exec_1`, so distinct ids can never collide onto the
//! same file (the old scheme flattened both to `exec_1` and let one
//! execution silently overwrite another). The mapping is reversible via
//! `unsanitise`, which lets directory scans recover the original ids.
//!
//! The same escape protects the *fields* of the line formats: service
//! names, channels, and URIs are stored with `%`, `|`, `,`, whitespace
//! control characters, and leading/trailing blanks percent-escaped, so a
//! hostile service name like `A | B` or a URI containing `,` round-trips
//! instead of splitting the line into extra fields on reload.
//!
//! State marks serialise as `nodes,resources` counter pairs. A caveat
//! applies after reload: XML serialisation is pre-order, so the reloaded
//! arena's node ids follow document order, which can differ from the
//! original creation order when later calls appended under earlier
//! parents. The counters remain correct as *sizes*, but per-call
//! `StateReplay` over a reloaded execution is not guaranteed to see the
//! exact historical states; use the posthoc strategies
//! (`TemporalRewrite`, `GroupedSinglePass`) on reloaded executions — they
//! depend only on labels and the final state, exactly like
//! `ExecutionTrace::reconstruct_from`.
//!
//! ## Crash safety
//!
//! All files are written atomically: the bytes go to a temporary file in
//! the same directory, the file is fsynced, renamed over the target, and
//! (on unix) the directory is fsynced — a crash mid-save leaves either the
//! old version or the new one, never a torn file. Trace and checkpoint
//! files additionally end in a `# end …` footer whose counter is checked on
//! load, so a file truncated by a crash *before* this scheme existed (or by
//! external interference) is detected as [`PersistError::Truncated`]
//! instead of being silently loaded as a shorter execution.
//!
//! ## Checkpoints
//!
//! A [`Checkpoint`] records how far an execution got: the number of
//! completed top-level workflow steps, the next call instant, and the
//! workflow's step names (verified on resume so a checkpoint cannot be
//! replayed against a different workflow). It persists as `<id>.ckpt`
//! alongside the document and trace:
//!
//! ```text
//! completed: 2
//! next-time: 5
//! step: Normaliser
//! step: Translator
//! # end steps=2
//! ```

use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

use weblab_prov::{CallRecord, ExecutionTrace, ProvLink};
use weblab_xml::{parse_document, to_xml_string, Document, StateMark, Timestamp};

/// Persistence failure.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The document file failed to parse.
    Xml(String),
    /// The trace file is malformed.
    Trace {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// A file's integrity footer is missing or disagrees with its contents
    /// — the file was truncated or otherwise damaged after being written.
    Truncated {
        /// Which file failed the check.
        file: String,
        /// Description of the mismatch.
        message: String,
    },
    /// A checkpoint file is malformed.
    Checkpoint {
        /// Description.
        message: String,
    },
    /// The store directory is locked by another live process (a second
    /// daemon attached the same `--store` directory). Stable error code:
    /// `store-locked`.
    StoreLocked {
        /// The locked store directory.
        path: String,
        /// Pid of the live owner found in the lock file.
        pid: u32,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Xml(m) => write!(f, "document error: {m}"),
            PersistError::Trace { line, message } => {
                write!(f, "trace format error at line {line}: {message}")
            }
            PersistError::Truncated { file, message } => {
                write!(f, "file {file} failed its integrity check: {message}")
            }
            PersistError::Checkpoint { message } => {
                write!(f, "checkpoint format error: {message}")
            }
            PersistError::StoreLocked { path, pid } => {
                write!(f, "store directory {path} is locked by running process {pid}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Escape a line-format field so it can never be confused with the
/// format's structure: `%` (the escape introducer), `|` (the field
/// separator), `,` (the produced-URI separator), line breaks and tabs are
/// always escaped as `%XX`; leading and trailing spaces are escaped too
/// because the parser trims fields. Everything else passes through, so
/// ordinary names serialise exactly as before.
pub(crate) fn escape_field(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len());
    for (i, &b) in bytes.iter().enumerate() {
        let boundary_space = b == b' ' && (i == 0 || i == bytes.len() - 1);
        if matches!(b, b'%' | b'|' | b',' | b'\n' | b'\r' | b'\t') || boundary_space {
            out.extend_from_slice(format!("%{b:02X}").as_bytes());
        } else {
            // Multi-byte UTF-8 sequences contain no ASCII specials, so
            // copying byte-by-byte preserves them intact.
            out.push(b);
        }
    }
    String::from_utf8(out).expect("escaping preserves UTF-8 validity")
}

/// Reverse [`escape_field`]. Fields written before the escape existed
/// contain no `%`, so they decode unchanged. A stray `%` not followed by
/// two hex digits is a format error.
pub(crate) fn unescape_field(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u8::from_str_radix(h, 16).ok())
                .ok_or_else(|| format!("malformed %XX escape in field {s:?}"))?;
            out.push(hex);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("escaped field {s:?} is not valid UTF-8"))
}

fn mark_to_string(m: StateMark) -> String {
    format!("{},{}", m.node_count(), m.resource_count())
}

fn mark_from_str(s: &str, line: usize) -> Result<StateMark, PersistError> {
    let (n, r) = s.split_once(',').ok_or(PersistError::Trace {
        line,
        message: format!("expected 'nodes,resources', found {s:?}"),
    })?;
    let parse = |v: &str| {
        v.trim().parse::<usize>().map_err(|_| PersistError::Trace {
            line,
            message: format!("invalid counter {v:?}"),
        })
    };
    Ok(StateMark::from_counts(parse(n)?, parse(r)?))
}

/// Serialise a trace to the line format.
pub fn trace_to_text(doc: &Document, trace: &ExecutionTrace) -> String {
    let mut out = String::new();
    for c in &trace.calls {
        let uris: Vec<String> = c
            .produced
            .iter()
            .filter_map(|&n| doc.resource(n).map(|m| escape_field(&m.uri)))
            .collect();
        out.push_str(&format!(
            "call: {} | {} | {} | {} | {} | {}\n",
            escape_field(&c.service),
            c.time,
            mark_to_string(c.input),
            mark_to_string(c.output),
            escape_field(&c.channel),
            uris.join(",")
        ));
    }
    out
}

/// Parse a trace from the line format, resolving produced URIs against the
/// document.
pub fn trace_from_text(doc: &Document, text: &str) -> Result<ExecutionTrace, PersistError> {
    let mut trace = ExecutionTrace::default();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let raw = raw.trim();
        if raw.is_empty() || raw.starts_with('#') {
            continue;
        }
        let rest = raw.strip_prefix("call:").ok_or(PersistError::Trace {
            line,
            message: "expected 'call:' prefix".into(),
        })?;
        let parts: Vec<&str> = rest.split('|').map(str::trim).collect();
        if parts.len() != 6 {
            return Err(PersistError::Trace {
                line,
                message: format!("expected 6 fields, found {}", parts.len()),
            });
        }
        let time = parts[1].parse().map_err(|_| PersistError::Trace {
            line,
            message: format!("invalid time {:?}", parts[1]),
        })?;
        let unescape = |f: &str| {
            unescape_field(f).map_err(|message| PersistError::Trace { line, message })
        };
        let produced = if parts[5].is_empty() {
            Vec::new()
        } else {
            parts[5]
                .split(',')
                .map(|u| {
                    let uri = unescape(u.trim())?;
                    doc.node_by_uri(&uri).ok_or(PersistError::Trace {
                        line,
                        message: format!("produced uri {uri:?} not in document"),
                    })
                })
                .collect::<Result<Vec<_>, _>>()?
        };
        trace.calls.push(CallRecord {
            service: unescape(parts[0])?,
            time,
            input: mark_from_str(parts[2], line)?,
            output: mark_from_str(parts[3], line)?,
            produced,
            channel: unescape(parts[4])?,
        });
    }
    Ok(trace)
}

/// Atomically replace `path` with `contents`: write to a temporary file in
/// the same directory, fsync it, rename it over the target, and (on unix)
/// fsync the directory so the rename itself is durable. A crash at any
/// point leaves either the complete old file or the complete new one.
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), PersistError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    // The temporary name must be unique per writer: with a fixed name, two
    // concurrent saves of the same id interleave create/write/rename and
    // can publish a torn file (or fail renaming a tmp the other writer
    // already consumed). pid + a process-wide counter keeps writers apart
    // both within a process and across processes sharing the directory.
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().unwrap_or(Path::new("."));
    let tmp = dir.join(format!(
        ".{}.{}.{}.tmp",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("persist"),
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    #[cfg(unix)]
    {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Trace integrity footer for `n` calls.
fn trace_footer(n: usize) -> String {
    format!("# end calls={n}\n")
}

/// Verify the `# end calls=N` footer of a trace file against the number of
/// calls actually parsed from it.
fn check_trace_footer(file: &str, text: &str, parsed_calls: usize) -> Result<(), PersistError> {
    let last = text.lines().next_back().unwrap_or("");
    let claimed: Option<usize> = last
        .strip_prefix("# end calls=")
        .and_then(|n| n.trim().parse().ok());
    match claimed {
        None => Err(PersistError::Truncated {
            file: file.into(),
            message: "missing '# end calls=N' footer (file truncated?)".into(),
        }),
        Some(n) if n != parsed_calls => Err(PersistError::Truncated {
            file: file.into(),
            message: format!("footer claims {n} calls but file holds {parsed_calls}"),
        }),
        Some(_) => Ok(()),
    }
}

/// Write an execution (document + trace) into `dir`. Both files are
/// written atomically and the trace carries an integrity footer.
pub fn save_execution(
    dir: &Path,
    exec_id: &str,
    doc: &Document,
    trace: &ExecutionTrace,
) -> Result<(), PersistError> {
    std::fs::create_dir_all(dir)?;
    write_atomic(&doc_path(dir, exec_id), &to_xml_string(&doc.view()))?;
    let text = trace_to_text(doc, trace) + &trace_footer(trace.len());
    write_atomic(&trace_path(dir, exec_id), &text)?;
    Ok(())
}

/// Load an execution written by [`save_execution`], verifying the trace's
/// integrity footer.
pub fn load_execution(
    dir: &Path,
    exec_id: &str,
) -> Result<(Document, ExecutionTrace), PersistError> {
    let xml = std::fs::read_to_string(doc_path(dir, exec_id))?;
    let doc = parse_document(&xml).map_err(|e| PersistError::Xml(e.to_string()))?;
    let trace_file = trace_path(dir, exec_id);
    let text = std::fs::read_to_string(&trace_file)?;
    let trace = trace_from_text(&doc, &text)?;
    check_trace_footer(&trace_file.display().to_string(), &text, trace.len())?;
    Ok((doc, trace))
}

/// Serialise a materialised link store (e.g. a live maintainer's
/// accumulated graph) to its line format:
///
/// ```text
/// link: weblab://res/8 | weblab://res/4
/// # end links=1
/// ```
pub fn link_store_to_text(links: &[ProvLink]) -> String {
    let mut out = String::new();
    for l in links {
        out.push_str(&format!(
            "link: {} | {}\n",
            escape_field(&l.from_uri),
            escape_field(&l.to_uri)
        ));
    }
    out.push_str(&format!("# end links={}\n", links.len()));
    out
}

/// Write a link store to `path`, atomically, with an integrity footer.
pub fn save_link_store(path: &Path, links: &[ProvLink]) -> Result<(), PersistError> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    write_atomic(path, &link_store_to_text(links))
}

/// Load a link store written by [`save_link_store`], verifying the
/// `# end links=N` footer and resolving each URI against the document.
pub fn load_link_store(path: &Path, doc: &Document) -> Result<Vec<ProvLink>, PersistError> {
    let text = std::fs::read_to_string(path)?;
    let mut links = Vec::new();
    let mut footer = None;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let raw = raw.trim();
        if let Some(v) = raw.strip_prefix("# end links=") {
            footer = v.trim().parse::<usize>().ok();
        } else if let Some(rest) = raw.strip_prefix("link:") {
            let (from_uri, to_uri) = rest.split_once('|').ok_or(PersistError::Trace {
                line,
                message: "expected 'link: from | to'".into(),
            })?;
            let resolve = |uri: &str| {
                doc.node_by_uri(uri).ok_or(PersistError::Trace {
                    line,
                    message: format!("link uri {uri:?} not in document"),
                })
            };
            let from_uri = unescape_field(from_uri.trim())
                .map_err(|message| PersistError::Trace { line, message })?;
            let to_uri = unescape_field(to_uri.trim())
                .map_err(|message| PersistError::Trace { line, message })?;
            links.push(ProvLink {
                from: resolve(&from_uri)?,
                from_uri,
                to: resolve(&to_uri)?,
                to_uri,
            });
        } else if !raw.is_empty() && !raw.starts_with('#') {
            return Err(PersistError::Trace {
                line,
                message: format!("unrecognised line {raw:?}"),
            });
        }
    }
    match footer {
        None => Err(PersistError::Truncated {
            file: path.display().to_string(),
            message: "missing '# end links=N' footer (file truncated?)".into(),
        }),
        Some(n) if n != links.len() => Err(PersistError::Truncated {
            file: path.display().to_string(),
            message: format!("footer claims {n} links but file holds {}", links.len()),
        }),
        Some(_) => Ok(links),
    }
}

/// How far an execution got: enough to resume it after a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Top-level workflow steps fully completed (their effects are in the
    /// persisted document and trace).
    pub completed_steps: usize,
    /// The call instant the next step must start at.
    pub next_time: Timestamp,
    /// The workflow's step names, for verifying on resume that the
    /// checkpoint belongs to the same workflow.
    pub step_names: Vec<String>,
}

/// Write `ckpt` as `<id>.ckpt` into `dir`, atomically.
pub fn save_checkpoint(dir: &Path, exec_id: &str, ckpt: &Checkpoint) -> Result<(), PersistError> {
    std::fs::create_dir_all(dir)?;
    let mut out = String::new();
    out.push_str(&format!("completed: {}\n", ckpt.completed_steps));
    out.push_str(&format!("next-time: {}\n", ckpt.next_time));
    for s in &ckpt.step_names {
        // Step names can be composite block renderings like "[A | B]";
        // the checkpoint parser does not field-split, but a name holding a
        // line break would still inject lines, so apply the same escape.
        out.push_str(&format!("step: {}\n", escape_field(s)));
    }
    out.push_str(&format!("# end steps={}\n", ckpt.step_names.len()));
    write_atomic(&checkpoint_path(dir, exec_id), &out)
}

/// Load a checkpoint written by [`save_checkpoint`]. Returns `Ok(None)` if
/// no checkpoint exists for the id.
pub fn load_checkpoint(dir: &Path, exec_id: &str) -> Result<Option<Checkpoint>, PersistError> {
    let path = checkpoint_path(dir, exec_id);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut completed = None;
    let mut next_time = None;
    let mut steps = Vec::new();
    let mut footer = None;
    for raw in text.lines() {
        let raw = raw.trim();
        if let Some(v) = raw.strip_prefix("completed:") {
            completed = v.trim().parse::<usize>().ok();
        } else if let Some(v) = raw.strip_prefix("next-time:") {
            next_time = v.trim().parse::<Timestamp>().ok();
        } else if let Some(v) = raw.strip_prefix("step:") {
            steps.push(
                unescape_field(v.trim())
                    .map_err(|message| PersistError::Checkpoint { message })?,
            );
        } else if let Some(v) = raw.strip_prefix("# end steps=") {
            footer = v.trim().parse::<usize>().ok();
        } else if !raw.is_empty() && !raw.starts_with('#') {
            return Err(PersistError::Checkpoint {
                message: format!("unrecognised line {raw:?}"),
            });
        }
    }
    match footer {
        None => {
            return Err(PersistError::Truncated {
                file: path.display().to_string(),
                message: "missing '# end steps=N' footer (file truncated?)".into(),
            })
        }
        Some(n) if n != steps.len() => {
            return Err(PersistError::Truncated {
                file: path.display().to_string(),
                message: format!("footer claims {n} steps but file holds {}", steps.len()),
            })
        }
        Some(_) => {}
    }
    let (completed_steps, next_time) = match (completed, next_time) {
        (Some(c), Some(t)) => (c, t),
        _ => {
            return Err(PersistError::Checkpoint {
                message: "missing completed:/next-time: headers".into(),
            })
        }
    };
    if completed_steps > steps.len() {
        return Err(PersistError::Checkpoint {
            message: format!(
                "completed {completed_steps} exceeds the {} workflow steps",
                steps.len()
            ),
        });
    }
    Ok(Some(Checkpoint {
        completed_steps,
        next_time,
        step_names: steps,
    }))
}

/// Remove the checkpoint for `exec_id`, if any (called once an execution
/// completes so a later run is not mistaken for a resume).
pub fn clear_checkpoint(dir: &Path, exec_id: &str) -> Result<(), PersistError> {
    match std::fs::remove_file(checkpoint_path(dir, exec_id)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

fn doc_path(dir: &Path, exec_id: &str) -> PathBuf {
    dir.join(format!("{}.xml", sanitise(exec_id)))
}

fn trace_path(dir: &Path, exec_id: &str) -> PathBuf {
    dir.join(format!("{}.trace", sanitise(exec_id)))
}

fn checkpoint_path(dir: &Path, exec_id: &str) -> PathBuf {
    dir.join(format!("{}.ckpt", sanitise(exec_id)))
}

/// Map an execution id to a file-name-safe stem, *injectively*: ASCII
/// letters, digits, `-` and `_` pass through; every other byte (including
/// `%`, `/`, `.` and non-ASCII bytes) becomes `%XX`. Distinct ids always
/// map to distinct stems — the previous lossy scheme flattened both
/// `exec/1` and `exec_1` to `exec_1`, letting one execution silently
/// overwrite the other's files.
pub(crate) fn sanitise(id: &str) -> String {
    let mut out = String::with_capacity(id.len());
    for b in id.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Reverse [`sanitise`]: recover the original execution id from a file
/// stem, or `None` if the stem is not a valid encoding (e.g. a file that
/// was not produced by `sanitise`).
pub(crate) fn unsanitise(stem: &str) -> Option<String> {
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())?;
                out.push(hex);
                i += 3;
            }
            b @ (b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_') => {
                out.push(b);
                i += 1;
            }
            _ => return None,
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use weblab_prov::{infer_provenance, EngineOptions};
    use weblab_workflow::generator::synthetic_workload;
    use weblab_workflow::Orchestrator;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("weblab-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_round_trip_preserves_inference() {
        let (mut doc, wf, rules) = synthetic_workload(21, 4, 3, 4);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let dir = tmpdir("roundtrip");
        save_execution(&dir, "exec/1", &doc, &outcome.trace).unwrap();
        let (doc2, trace2) = load_execution(&dir, "exec/1").unwrap();

        // structure identical
        assert_eq!(
            to_xml_string(&doc.view()),
            to_xml_string(&doc2.view())
        );
        // trace metadata identical (produced compared by uri)
        assert_eq!(outcome.trace.len(), trace2.len());
        for (a, b) in outcome.trace.calls.iter().zip(&trace2.calls) {
            assert_eq!(a.service, b.service);
            assert_eq!(a.time, b.time);
            assert_eq!(a.channel, b.channel);
            assert_eq!(a.produced.len(), b.produced.len());
        }
        // inference over the reloaded execution gives the same link pairs
        let opts = EngineOptions::default();
        let g1 = infer_provenance(&doc, &outcome.trace, &rules, &opts);
        let g2 = infer_provenance(&doc2, &trace2, &rules, &opts);
        let pairs = |g: &weblab_prov::ProvenanceGraph| {
            g.links
                .iter()
                .map(|l| (l.from_uri.clone(), l.to_uri.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(pairs(&g1), pairs(&g2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_text_round_trips_channels_and_marks() {
        let mut doc = Document::new("Resource");
        let root = doc.root();
        let d0 = doc.mark();
        let a = doc.append_element(root, "A").unwrap();
        doc.register_resource(a, "ra", Some(weblab_xml::CallLabel::new("S", 1)))
            .unwrap();
        let d1 = doc.mark();
        let mut trace = ExecutionTrace::default();
        trace.record_call_on_channel(&doc, "S", 1, d0, d1, "0.1");
        let text = trace_to_text(&doc, &trace);
        assert!(text.contains("| 0.1 |"));
        let back = trace_from_text(&doc, &text).unwrap();
        assert_eq!(back.calls[0].channel, "0.1");
        assert_eq!(back.calls[0].input.node_count(), d0.node_count());
        assert_eq!(back.calls[0].produced, vec![a]);
    }

    #[test]
    fn malformed_trace_lines_are_rejected_with_line_numbers() {
        let doc = Document::new("Resource");
        for (text, expect_line) in [
            ("garbage", 1),
            ("call: S | x | 0,0 | 0,0 |  | ", 1),
            ("call: S | 1 | 0 | 0,0 |  | ", 1),
            ("\n\ncall: S | 1 | 0,0 | 0,0 |  | missing://uri", 3),
        ] {
            match trace_from_text(&doc, text) {
                Err(PersistError::Trace { line, .. }) => assert_eq!(line, expect_line),
                other => panic!("expected trace error, got {other:?}"),
            }
        }
        // comments and blanks are fine
        assert!(trace_from_text(&doc, "# empty\n\n").unwrap().is_empty());
    }

    #[test]
    fn missing_files_error_cleanly() {
        let dir = tmpdir("missing");
        assert!(matches!(
            load_execution(&dir, "nope"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn truncated_trace_file_is_detected() {
        let (mut doc, wf, _rules) = synthetic_workload(7, 3, 2, 3);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let dir = tmpdir("truncated");
        save_execution(&dir, "e", &doc, &outcome.trace).unwrap();
        let tp = dir.join("e.trace");
        let full = std::fs::read_to_string(&tp).unwrap();
        // chop the footer and the last call line off, as a crash mid-write
        // (pre-atomic-rename) or a damaged disk would
        let lines: Vec<&str> = full.lines().collect();
        let cut = lines[..lines.len() - 2].join("\n") + "\n";
        std::fs::write(&tp, cut).unwrap();
        assert!(matches!(
            load_execution(&dir, "e"),
            Err(PersistError::Truncated { .. })
        ));
        // a lying footer (count mismatch) is also caught
        let mut bad: Vec<&str> = lines[..lines.len() - 2].to_vec();
        let footer = lines[lines.len() - 1];
        bad.push(footer);
        std::fs::write(&tp, bad.join("\n") + "\n").unwrap();
        assert!(matches!(
            load_execution(&dir, "e"),
            Err(PersistError::Truncated { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_writes_leave_no_temp_files() {
        let (mut doc, wf, _rules) = synthetic_workload(3, 2, 2, 2);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let dir = tmpdir("atomic");
        save_execution(&dir, "e", &doc, &outcome.trace).unwrap();
        // overwrite in place — still atomic, still clean
        save_execution(&dir, "e", &doc, &outcome.trace).unwrap();
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_round_trips_and_detects_truncation() {
        let dir = tmpdir("ckpt");
        assert_eq!(load_checkpoint(&dir, "e").unwrap(), None);
        let ckpt = Checkpoint {
            completed_steps: 2,
            next_time: 5,
            step_names: vec![
                "Normaliser".into(),
                "Translator".into(),
                "[A | B]".into(),
            ],
        };
        save_checkpoint(&dir, "e", &ckpt).unwrap();
        assert_eq!(load_checkpoint(&dir, "e").unwrap(), Some(ckpt.clone()));
        // truncate: drop the footer
        let cp = dir.join("e.ckpt");
        let full = std::fs::read_to_string(&cp).unwrap();
        let lines: Vec<&str> = full.lines().collect();
        std::fs::write(&cp, lines[..lines.len() - 1].join("\n") + "\n").unwrap();
        assert!(matches!(
            load_checkpoint(&dir, "e"),
            Err(PersistError::Truncated { .. })
        ));
        // clearing removes it; clearing twice is fine
        std::fs::write(&cp, full).unwrap();
        clear_checkpoint(&dir, "e").unwrap();
        assert_eq!(load_checkpoint(&dir, "e").unwrap(), None);
        clear_checkpoint(&dir, "e").unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn link_store_round_trips_and_detects_truncation() {
        use weblab_prov::LiveProvenance;
        let (mut doc, wf, rules) = synthetic_workload(13, 4, 2, 3);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let mut live = LiveProvenance::new(rules, EngineOptions::default());
        live.catch_up(&doc, &outcome.trace);
        let links = live.links();
        assert!(!links.is_empty());

        let dir = tmpdir("linkstore");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("e.links");
        save_link_store(&path, &links).unwrap();
        let back = load_link_store(&path, &doc).unwrap();
        assert_eq!(back, links);

        // chop the footer off: detected as truncation
        let full = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = full.lines().collect();
        std::fs::write(&path, lines[..lines.len() - 1].join("\n") + "\n").unwrap();
        assert!(matches!(
            load_link_store(&path, &doc),
            Err(PersistError::Truncated { .. })
        ));
        // a footer that disagrees with the body is also caught
        let mut bad: Vec<&str> = lines[..lines.len() - 2].to_vec();
        bad.push(lines[lines.len() - 1]);
        std::fs::write(&path, bad.join("\n") + "\n").unwrap();
        assert!(matches!(
            load_link_store(&path, &doc),
            Err(PersistError::Truncated { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_ids_map_to_distinct_files() {
        // Regression: the old sanitise() flattened both of these to
        // "exec_1", so the second save silently overwrote the first.
        assert_ne!(sanitise("exec/1"), sanitise("exec_1"));
        assert_eq!(sanitise("exec/1"), "exec%2F1");
        assert_eq!(sanitise("exec_1"), "exec_1");

        let dir = tmpdir("collide");
        let (mut doc_a, wf_a, _) = synthetic_workload(5, 2, 2, 2);
        let out_a = Orchestrator::new().execute(&wf_a, &mut doc_a).unwrap();
        let (mut doc_b, wf_b, _) = synthetic_workload(17, 4, 3, 4);
        let out_b = Orchestrator::new().execute(&wf_b, &mut doc_b).unwrap();
        save_execution(&dir, "exec/1", &doc_a, &out_a.trace).unwrap();
        save_execution(&dir, "exec_1", &doc_b, &out_b.trace).unwrap();

        let (back_a, trace_a) = load_execution(&dir, "exec/1").unwrap();
        let (back_b, trace_b) = load_execution(&dir, "exec_1").unwrap();
        assert_eq!(to_xml_string(&back_a.view()), to_xml_string(&doc_a.view()));
        assert_eq!(to_xml_string(&back_b.view()), to_xml_string(&doc_b.view()));
        assert_eq!(trace_a.len(), out_a.trace.len());
        assert_eq!(trace_b.len(), out_b.trace.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sanitise_is_injective_and_reversible() {
        let ids = [
            "plain", "exec/1", "exec_1", "a b", "a%2Fb", "%", "..", "über",
            "x|y,z", "", "exec.1", "exec%1",
        ];
        let mut seen = std::collections::HashSet::new();
        for id in ids {
            let stem = sanitise(id);
            assert!(seen.insert(stem.clone()), "collision on {id:?}");
            assert!(
                stem.bytes().all(|b| b.is_ascii_alphanumeric()
                    || b == b'-'
                    || b == b'_'
                    || b == b'%'),
                "unsafe byte in stem {stem:?}"
            );
            assert_eq!(unsanitise(&stem).as_deref(), Some(id));
        }
        // stems that were never produced by sanitise are rejected
        assert_eq!(unsanitise("bad%zz"), None);
        assert_eq!(unsanitise("trailing%2"), None);
        assert_eq!(unsanitise("has/slash"), None);
    }

    // Regression: service names, channels and URIs containing the line
    // format's own separators used to mis-parse on reload.
    const HOSTILE: [char; 11] = ['|', ',', '%', ' ', '\n', '\t', '\r', 'a', 'Z', '/', 'é'];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn hostile_field_names_round_trip(
            picks in prop::collection::vec(
                (0usize..HOSTILE.len(), 0usize..HOSTILE.len(), 0usize..HOSTILE.len()),
                1..6,
            ),
        ) {
            let field = |seed: &[usize]| -> String {
                seed.iter().map(|&i| HOSTILE[i]).collect()
            };
            let mut doc = Document::new("Resource");
            let root = doc.root();
            let d0 = doc.mark();
            let mut trace = ExecutionTrace::default();
            let mut uris = Vec::new();
            for (i, &(a, b, c)) in picks.iter().enumerate() {
                let n = doc.append_element(root, "A").unwrap();
                // unique per node, but soaked in separator characters
                let uri = format!("{}#{i}", field(&[a, b, c]));
                doc.register_resource(n, uri.clone(), Some(weblab_xml::CallLabel::new("S", i as u64 + 1)))
                    .unwrap();
                uris.push(uri);
                let d1 = doc.mark();
                let service = field(&[b, a]);
                let channel = field(&[c, b, a]);
                trace.record_call_on_channel(&doc, &service, i as u64 + 1, d0, d1, &channel);
            }
            let text = trace_to_text(&doc, &trace);
            let back = trace_from_text(&doc, &text).unwrap();
            prop_assert_eq!(back.len(), trace.len());
            for (orig, round) in trace.calls.iter().zip(&back.calls) {
                prop_assert_eq!(&orig.service, &round.service);
                prop_assert_eq!(&orig.channel, &round.channel);
                prop_assert_eq!(&orig.produced, &round.produced);
            }
            // link store with the same hostile URIs
            let links: Vec<ProvLink> = uris
                .windows(2)
                .map(|w| ProvLink {
                    from: doc.node_by_uri(&w[1]).unwrap(),
                    from_uri: w[1].clone(),
                    to: doc.node_by_uri(&w[0]).unwrap(),
                    to_uri: w[0].clone(),
                })
                .collect();
            let dir = tmpdir("hostile");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("h.links");
            save_link_store(&path, &links).unwrap();
            let back_links = load_link_store(&path, &doc).unwrap();
            prop_assert_eq!(back_links, links);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn concurrent_saves_publish_one_complete_version() {
        // Regression: with a fixed tmp name, two concurrent write_atomic
        // calls interleaved create/write/rename and could publish a torn
        // file or fail on a tmp the other writer had already renamed.
        use std::sync::Arc;
        let dir = tmpdir("race");
        std::fs::create_dir_all(&dir).unwrap();
        let path = Arc::new(dir.join("contended.txt"));
        let candidates: Vec<String> = (0..8)
            .map(|i| format!("writer-{i}\n").repeat(2000))
            .collect();
        let mut handles = Vec::new();
        for content in &candidates {
            let path = Arc::clone(&path);
            let content = content.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    write_atomic(&path, &content).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let last = std::fs::read_to_string(&*path).unwrap();
        assert!(
            candidates.contains(&last),
            "published file is a torn mix of writers"
        );
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaped_fields_keep_plain_names_readable() {
        // Files written before the escape existed contain no '%'; the
        // parser must read them unchanged, and ordinary names must still
        // serialise byte-for-byte as before.
        assert_eq!(escape_field("Normaliser"), "Normaliser");
        assert_eq!(escape_field("weblab://res/a"), "weblab://res/a");
        assert_eq!(unescape_field("weblab://res/a").unwrap(), "weblab://res/a");
        assert_eq!(escape_field("A | B"), "A %7C B");
        assert_eq!(unescape_field("A %7C B").unwrap(), "A | B");
        assert_eq!(escape_field(" pad "), "%20pad%20");
        assert!(unescape_field("broken %2").is_err());
    }

    #[test]
    fn inconsistent_checkpoints_are_rejected() {
        let dir = tmpdir("badckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let cp = dir.join("e.ckpt");
        // completed beyond the step list
        std::fs::write(&cp, "completed: 9\nnext-time: 1\nstep: A\n# end steps=1\n").unwrap();
        assert!(matches!(
            load_checkpoint(&dir, "e"),
            Err(PersistError::Checkpoint { .. })
        ));
        // unknown line
        std::fs::write(&cp, "completed: 0\nnext-time: 1\nwat\n# end steps=0\n").unwrap();
        assert!(matches!(
            load_checkpoint(&dir, "e"),
            Err(PersistError::Checkpoint { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
