//! # proptest (in-tree stand-in)
//!
//! A std-only, offline drop-in for the subset of the `proptest` crate used
//! by this workspace's test suites. The build environment has no registry
//! access, so the real crate cannot be fetched; this shim keeps the
//! property-test sources compiling and *running* unchanged.
//!
//! Differences from upstream, by design:
//!
//! * cases are generated from a deterministic [`rng::SplitMix64`] stream
//!   seeded from the test's module path and name, so every run explores the
//!   same inputs (failures reproduce immediately, no persistence files);
//! * there is no shrinking — the failing case's inputs are printed as-is;
//! * the regex string strategy supports exactly the `atom{lo,hi}` shapes
//!   (a dot or a character class) that the suites use.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), [`prelude`], [`Strategy`] for integer
//! ranges, tuples, `&str` regexes and mapped/vector combinators,
//! `any::<T>()`, `prop::collection::vec`, `prop::char::any()`,
//! `prop::bool::ANY`, `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rng;
pub mod strategy;

pub mod test_runner {
    //! Test-runner configuration (a tiny mirror of `proptest::test_runner`).

    /// Run configuration: how many random cases each property executes.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies for primitive types.

    use crate::rng::SplitMix64;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: std::fmt::Debug {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut SplitMix64) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SplitMix64) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SplitMix64) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut SplitMix64) -> Self {
            crate::char::sample(rng)
        }
    }

    /// Strategy wrapper returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SplitMix64) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::rng::SplitMix64;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end.max(r.start + 1) }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SplitMix64) -> Vec<S::Value> {
            let len = self.size.lo + (rng.next_u64() as usize) % (self.size.hi - self.size.lo);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod char {
    //! Character strategies.

    use crate::rng::SplitMix64;
    use crate::strategy::Strategy;

    pub(crate) fn sample(rng: &mut SplitMix64) -> char {
        // Bias towards ASCII (parsers mostly trip on structure, not
        // astral-plane code points), but keep full-range coverage.
        if !rng.next_u64().is_multiple_of(4) {
            (0x20 + (rng.next_u64() % 0x5f)) as u8 as char
        } else {
            loop {
                if let Some(c) = char::from_u32((rng.next_u64() % 0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }

    /// Strategy over all `char`s.
    #[derive(Debug, Clone, Copy)]
    pub struct CharAny;

    impl Strategy for CharAny {
        type Value = char;
        fn generate(&self, rng: &mut SplitMix64) -> char {
            sample(rng)
        }
    }

    /// Any character.
    pub fn any() -> CharAny {
        CharAny
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::rng::SplitMix64;
    use crate::strategy::Strategy;

    /// Strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut SplitMix64) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Either boolean, uniformly.
    pub const ANY: BoolAny = BoolAny;
}

pub mod string;

pub mod prelude {
    //! The usual `use proptest::prelude::*` surface.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop` namespace (`prop::collection::vec`, `prop::char::any`, …).
    pub mod prop {
        pub use crate::bool;
        pub use crate::char;
        pub use crate::collection;
    }
}

/// Define property tests.
///
/// Mirrors `proptest::proptest!`: an optional `#![proptest_config(expr)]`
/// header followed by `#[test] fn name(pat in strategy, …) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg.clone();
            let mut rng = $crate::rng::SplitMix64::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                let guard = $crate::CaseGuard::new(case, {
                    let mut s = String::new();
                    $(s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)*
                    s
                });
                $body
                guard.disarm();
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Prints the failing case's inputs when a property body panics.
pub struct CaseGuard {
    case: u32,
    describe: Option<String>,
}

impl CaseGuard {
    /// Arm a guard for `case` with a description of its inputs.
    pub fn new(case: u32, describe: String) -> Self {
        CaseGuard { case, describe: Some(describe) }
    }

    /// The case completed: don't report anything.
    pub fn disarm(mut self) {
        self.describe = None;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if let Some(describe) = &self.describe {
            eprintln!("proptest case {} failed with inputs:\n{}", self.case, describe);
        }
    }
}

/// Assert a condition inside a property, reporting the expression on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr) => { assert_eq!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)*) => { assert_eq!($l, $r, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr) => { assert_ne!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)*) => { assert_ne!($l, $r, $($fmt)*) };
}

/// Skip the current case when an assumption does not hold.
///
/// The shim cannot restart a case mid-body, so an unmet assumption simply
/// returns from the enclosing test function (coverage comes from the other
/// cases).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}
