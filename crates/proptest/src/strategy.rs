//! The [`Strategy`] trait and its implementations for ranges, tuples and
//! regex string literals.

use crate::rng::SplitMix64;
use std::fmt::Debug;
use std::ops::Range;

/// A generator of random test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draw one value from the strategy.
    fn generate(&self, rng: &mut SplitMix64) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SplitMix64) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SplitMix64) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut SplitMix64) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// A `&str` is interpreted as a regex over which strings are generated
/// (the `atom{lo,hi}` subset — see [`crate::string`]).
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut SplitMix64) -> String {
        crate::string::generate(self, rng)
    }
}
