//! Regex-literal string generation.
//!
//! Upstream proptest interprets a `&str` strategy as a full regex. This
//! shim supports the subset the workspace's fuzz suites actually use: a
//! sequence of atoms — `.`, a character class `[...]`, or a literal
//! character (backslash-escapable) — each optionally followed by a
//! `{lo,hi}`, `{n}`, `*`, `+` or `?` quantifier. Anything else panics
//! loudly so a silent mismatch can't slip into a test.

use crate::rng::SplitMix64;

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any character except newline.
    Dot,
    /// `[...]` — inclusive ranges; `negated` inverts membership.
    Class { ranges: Vec<(char, char)>, negated: bool },
    /// A literal character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    lo: usize,
    hi: usize, // inclusive
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut SplitMix64) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let span = piece.hi - piece.lo + 1;
        let n = piece.lo + rng.below(span as u64) as usize;
        for _ in 0..n {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut SplitMix64) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Dot => loop {
            let c = crate::char::sample(rng);
            if c != '\n' {
                return c;
            }
        },
        Atom::Class { ranges, negated: false } => {
            let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
            let (lo, hi) = (lo as u32, hi as u32);
            loop {
                if let Some(c) = char::from_u32(lo + rng.below((hi - lo + 1) as u64) as u32) {
                    return c;
                }
            }
        }
        Atom::Class { ranges, negated: true } => loop {
            let c = crate::char::sample(rng);
            if !ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&c)) {
                return c;
            }
        },
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                i += 1;
                let (class, next) = parse_class(pattern, &chars, i);
                i = next;
                class
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).unwrap_or_else(|| unsupported(pattern));
                i += 1;
                Atom::Literal(escaped(c))
            }
            '(' | ')' | '|' | '^' | '$' | '*' | '+' | '?' | '{' => unsupported(pattern),
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (lo, hi, next) = parse_quantifier(pattern, &chars, i);
        i = next;
        pieces.push(Piece { atom, lo, hi });
    }
    pieces
}

fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (Atom, usize) {
    let mut ranges = Vec::new();
    let negated = chars.get(i) == Some(&'^');
    if negated {
        i += 1;
    }
    let mut first = true;
    loop {
        let c = match chars.get(i) {
            None => unsupported(pattern),
            Some(']') if !first => return (Atom::Class { ranges, negated }, i + 1),
            Some('\\') => {
                i += 1;
                escaped(*chars.get(i).unwrap_or_else(|| unsupported(pattern)))
            }
            Some(&c) => c,
        };
        i += 1;
        first = false;
        // `c-d` is a range unless the `-` is last in the class.
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&n| n != ']') {
            i += 1;
            let end = match chars.get(i) {
                Some('\\') => {
                    i += 1;
                    escaped(*chars.get(i).unwrap_or_else(|| unsupported(pattern)))
                }
                Some(&e) => e,
                None => unsupported(pattern),
            };
            i += 1;
            assert!(c <= end, "inverted class range in regex {pattern:?}");
            ranges.push((c, end));
        } else {
            ranges.push((c, c));
        }
    }
}

/// Parse an optional quantifier at `i`; returns (lo, hi inclusive, next index).
fn parse_quantifier(pattern: &str, chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| unsupported(pattern))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or_else(|_| unsupported(pattern)),
                    hi.trim().parse().unwrap_or_else(|_| unsupported(pattern)),
                ),
                None => {
                    let n = body.trim().parse().unwrap_or_else(|_| unsupported(pattern));
                    (n, n)
                }
            };
            assert!(lo <= hi, "inverted quantifier in regex {pattern:?}");
            (lo, hi, close + 1)
        }
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        Some('?') => (0, 1, i + 1),
        _ => (1, 1, i),
    }
}

fn escaped(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        c => c,
    }
}

fn unsupported(pattern: &str) -> ! {
    panic!("proptest shim: unsupported regex construct in {pattern:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SplitMix64 {
        SplitMix64::from_seed(7)
    }

    #[test]
    fn dot_quantified() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate(".{0,200}", &mut r);
            assert!(s.chars().count() <= 200);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn class_with_escapes_and_trailing_dash() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z<>@:\\.;,\"_ \\^#-]{0,120}", &mut r);
            for c in s.chars() {
                assert!(
                    c.is_ascii_lowercase()
                        || "<>@:.;,\"_ ^#-".contains(c),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn exact_count_and_bare_atoms() {
        let mut r = rng();
        let s = generate("ab[0-9]{3}", &mut r);
        assert!(s.starts_with("ab") && s.len() == 5);
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
    }
}
