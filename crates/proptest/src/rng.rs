//! Deterministic SplitMix64 generator used to drive case generation.

/// SplitMix64 (Steele, Lea & Flood 2014): tiny, fast, and statistically
/// solid enough for test-case generation. Fully deterministic from the seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed directly from a 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Seed from a test name (FNV-1a hash), so every property gets its own
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SplitMix64 { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitMix64::from_name("x");
        let mut b = SplitMix64::from_name("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let mut a = SplitMix64::from_name("x");
        let mut b = SplitMix64::from_name("y");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
