//! Golden metrics for provenance-guided replay, verified through the
//! deterministic `weblab_obs` registry (own test binary: the registry is
//! process-global, so these tests serialise on a mutex and must not share
//! a process with other engine work).
//!
//! Pinned here:
//!
//! * the `replay.{cone_size,reused,recomputed,splices}` counters on the
//!   repo's paper-example workload (`data/sample_corpus.xml` through the
//!   standard mining pipeline) — and their *invariance* under the
//!   inference worker count used to compute the cone (1/2/4), since the
//!   cone is a set and the splice plan depends only on it;
//! * the `replay.grade_pct` histogram shape for a concordant-mode replay
//!   with an injected nondeterministic service: one byte-identical
//!   fragment at grade 100, one divergent fragment graded by its Dice
//!   similarity, plus a populated `replay.verify_ns` histogram.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex as StdMutex;

use weblab::obs;
use weblab::prov::{
    dirty_cone, infer_provenance, EngineOptions, ExecutionTrace, InheritMode,
    Parallelism, ReachabilityIndex,
};
use weblab::workflow::services::{self, LanguageExtractor, Normaliser, Tokeniser, Translator};
use weblab::workflow::{
    CallContext, Orchestrator, ProofMode, Service, Workflow, WorkflowError,
};
use weblab::xml::{parse_document, Document};

static SERIAL: StdMutex<()> = StdMutex::new(());

const CORPUS: &str = include_str!("../data/sample_corpus.xml");

fn pipeline() -> Workflow {
    Workflow::new()
        .then(Normaliser)
        .then(LanguageExtractor)
        .then(Translator::default())
        .then(Tokeniser)
}

/// The dirty cone the CLI would compute, at a chosen inference worker
/// count.
fn closed_cone(
    doc: &Document,
    trace: &ExecutionTrace,
    changed: &[String],
    jobs: Parallelism,
) -> HashSet<String> {
    let rules = services::default_rules();
    let graph = infer_provenance(
        doc,
        trace,
        &rules,
        &EngineOptions {
            inherit: InheritMode::PatternRewrite,
            parallelism: jobs,
            ..Default::default()
        },
    );
    let index = ReachabilityIndex::from_graph(&graph);
    dirty_cone(&index, changed).into_iter().collect()
}

/// Golden `replay.*` counters on the paper example: mutating the English
/// source dirties the Normaliser, LanguageExtractor and Tokeniser calls
/// (cone of 5 resources) while the Translator call is spliced forward —
/// identically at every inference worker count.
#[test]
fn golden_replay_counters_on_the_sample_corpus_are_worker_invariant() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let wf = pipeline();
    let mut prior_doc = parse_document(CORPUS).expect("sample corpus parses");
    let prior = Orchestrator::new().execute(&wf, &mut prior_doc).expect("prior run");
    let changed_xml = CORPUS.replace("the language of peace", "the language of war");
    assert_ne!(changed_xml, CORPUS, "the mutation must hit the corpus");
    let changed = vec!["weblab://src/1".to_string()];

    let mut seen = Vec::new();
    for jobs in [Parallelism::Sequential, Parallelism::Threads(2), Parallelism::Threads(4)] {
        let dirty = closed_cone(&prior_doc, &prior.trace, &changed, jobs);
        let mut doc = parse_document(&changed_xml).expect("changed corpus parses");
        obs::reset();
        obs::enable();
        let replayed = Orchestrator::new()
            .replay(&wf, &mut doc, &prior_doc, &prior.trace, &dirty, ProofMode::Trusted)
            .expect("replay");
        let snap = obs::snapshot();
        obs::disable();

        let counters = (
            snap.counter("replay.cone_size"),
            snap.counter("replay.reused"),
            snap.counter("replay.recomputed"),
            snap.counter("replay.splices"),
        );
        // Golden values for this corpus + pipeline + mutation.
        assert_eq!(counters, (5, 1, 3, 1), "under {jobs:?}");
        assert_eq!(replayed.cone_size, 5);
        assert_eq!(replayed.reused, 1);
        assert_eq!(replayed.recomputed, 3);
        seen.push(counters);
    }
    assert!(
        seen.windows(2).all(|w| w[0] == w[1]),
        "replay counters must be invariant in the worker count: {seen:?}"
    );
}

/// A service with stable shape but one nondeterministic line: nine stable
/// text children plus a process-global nonce, so its 12-line fragment
/// signature matches a re-execution on 11 lines (Dice 22/24 ≈ 0.917 →
/// grade 92).
struct Noisy;

static NONCE: AtomicU64 = AtomicU64::new(0);

impl Service for Noisy {
    fn name(&self) -> &str {
        "Noisy"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let root = doc.root();
        let el = doc.append_element(root, "Noise")?;
        for i in 0..9 {
            doc.append_text(el, format!("stable line {i}"))?;
        }
        let nonce = NONCE.fetch_add(1, Ordering::SeqCst);
        doc.append_text(el, format!("nonce {nonce}"))?;
        ctx.register(doc, el)?;
        Ok(())
    }
}

#[test]
fn concordant_mode_snapshots_the_grade_histogram() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let wf = Workflow::new().then(Normaliser).then(Noisy);
    let mut prior_doc = parse_document(CORPUS).expect("sample corpus parses");
    let prior = Orchestrator::new().execute(&wf, &mut prior_doc).expect("prior run");

    // Empty cone: both calls are reused, both are sandbox-verified.
    let mut doc = parse_document(CORPUS).expect("corpus re-parses");
    obs::reset();
    obs::enable();
    let replayed = Orchestrator::new()
        .replay(
            &wf,
            &mut doc,
            &prior_doc,
            &prior.trace,
            &HashSet::new(),
            ProofMode::Concordant { tolerance: 0.8 },
        )
        .expect("concordant replay");
    let snap = obs::snapshot();
    obs::disable();

    // Two graded fragments: the deterministic Normaliser at 100, the
    // nondeterministic Noisy at its Dice grade of 92.
    assert_eq!(replayed.grades.len(), 2);
    let hist = snap.histogram("replay.grade_pct").expect("grade histogram");
    assert_eq!(hist.count, 2);
    assert_eq!(hist.min, 92, "the Noisy fragment's Dice grade");
    assert_eq!(hist.max, 100, "the Normaliser fragment is byte-identical");
    let noisy = replayed
        .grades
        .iter()
        .find(|g| g.service == "Noisy")
        .expect("Noisy graded");
    assert!(!noisy.identical);
    assert!((noisy.grade - 11.0 / 12.0).abs() < 1e-9, "grade {noisy:?}");
    let verify = snap.histogram("replay.verify_ns").expect("verify histogram");
    assert_eq!(verify.count, 2, "one verification span per reused step");
}
