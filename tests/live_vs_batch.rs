//! Differential tests for live provenance maintenance: a [`LiveProvenance`]
//! maintainer fed one committed call at a time from the orchestrator's
//! call-completion hook must end up with *exactly* the graph a one-shot
//! batch `infer_provenance` derives over the final document and trace —
//! across every strategy, inherit mode and worker count, through parallel
//! blocks, and under fault injection (retried and skipped steps), where
//! rolled-back attempts must leave no residue in the live store.
//!
//! The underlying law is the append-only delta decomposition
//! `links(0..n) = links(0..k) ∪ links(k..n)` (DESIGN.md § 9); these tests
//! pin the orchestration-level consequences end to end.

use std::sync::{Arc, Mutex};

use weblab::prov::{
    infer_provenance, paper_example, EngineOptions, ExecutionTrace, InheritMode, LiveProvenance,
    Parallelism, ProvenanceGraph, RuleSet, Strategy,
};
use weblab::rdf::{export_prov_into, to_turtle, LiveProvStore, Triple, TripleStore};
use weblab::workflow::generator::{synthetic_workload, SyntheticService};
use weblab::workflow::services::Flaky;
use weblab::workflow::{
    ExecutionOutcome, FaultPolicy, Orchestrator, RetryPolicy, Workflow,
};
use weblab::xml::Document;

/// Every inference configuration the differential sweep covers.
fn all_opts() -> Vec<EngineOptions> {
    let mut out = Vec::new();
    for strategy in [
        Strategy::StateReplay { materialize: false },
        Strategy::TemporalRewrite,
        Strategy::GroupedSinglePass,
    ] {
        for inherit in [
            InheritMode::Off,
            InheritMode::PatternRewrite,
            InheritMode::GraphPropagation,
        ] {
            for parallelism in [
                Parallelism::Sequential,
                Parallelism::Threads(2),
                Parallelism::Threads(4),
            ] {
                out.push(EngineOptions {
                    strategy,
                    inherit,
                    parallelism,
                    ..Default::default()
                });
            }
        }
    }
    out
}

/// Execute `wf` over `doc` with a live maintainer attached to the
/// orchestrator's call hook, returning the final document, the outcome and
/// the maintainer (with trailing sources absorbed).
fn run_live(
    mut doc: Document,
    wf: &Workflow,
    rules: &RuleSet,
    opts: EngineOptions,
    fault: Option<FaultPolicy>,
) -> (Document, ExecutionOutcome, LiveProvenance) {
    let maintainer = Arc::new(Mutex::new(LiveProvenance::new(rules.clone(), opts)));
    maintainer
        .lock()
        .unwrap()
        .catch_up(&doc, &ExecutionTrace::default());
    let hook = Arc::clone(&maintainer);
    let mut orch = Orchestrator::new().with_call_hook(Arc::new(move |d, t, i| {
        hook.lock().unwrap().observe_call(d, t, i);
    }));
    if let Some(f) = fault {
        orch = orch.with_fault(f);
    }
    let outcome = orch.execute(wf, &mut doc).expect("workflow execution");
    drop(orch); // release the hook's clone of the maintainer
    let mut live = match Arc::try_unwrap(maintainer) {
        Ok(m) => m.into_inner().unwrap(),
        Err(_) => panic!("maintainer uniquely owned after the orchestrator is dropped"),
    };
    live.catch_up(&doc, &outcome.trace);
    (doc, outcome, live)
}

fn sorted_pairs(g: &ProvenanceGraph) -> Vec<(String, String)> {
    let mut pairs: Vec<(String, String)> = g
        .links
        .iter()
        .map(|l| (l.from_uri.clone(), l.to_uri.clone()))
        .collect();
    pairs.sort();
    pairs.dedup();
    pairs
}

/// Assert the maintainer's accumulated state equals a fresh batch
/// inference over the final document and trace.
fn assert_live_equals_batch(
    doc: &Document,
    trace: &ExecutionTrace,
    rules: &RuleSet,
    opts: &EngineOptions,
    live: &LiveProvenance,
    label: &str,
) {
    let batch = infer_provenance(doc, trace, rules, opts);
    let live_graph = live.to_provenance_graph();
    assert_eq!(
        sorted_pairs(&live_graph),
        sorted_pairs(&batch),
        "link sets diverge: {label}"
    );
    assert_eq!(
        live_graph.sources, batch.sources,
        "source tables diverge: {label}"
    );
}

#[test]
fn live_equals_batch_across_strategies_inherit_modes_and_workers() {
    for seed in [3, 17] {
        for opts in all_opts() {
            let (doc, wf, rules) = synthetic_workload(seed, 5, 3, 2);
            let (doc, outcome, live) = run_live(doc, &wf, &rules, opts, None);
            assert!(live.link_count() > 0, "workload produced no links");
            assert_live_equals_batch(
                &doc,
                &outcome.trace,
                &rules,
                &opts,
                &live,
                &format!("seed {seed}, {opts:?}"),
            );
        }
    }
}

#[test]
fn live_equals_batch_through_parallel_blocks() {
    // fork two branches of fan-out services between sequential stages; the
    // hook only sees branch calls after the join merges them into the main
    // arena, yet the accumulated graph must match batch inference (which
    // applies channel visibility filtering to the whole trace at once)
    for opts in [
        EngineOptions::default(),
        EngineOptions {
            strategy: Strategy::GroupedSinglePass,
            inherit: InheritMode::PatternRewrite,
            ..Default::default()
        },
    ] {
        let mut rules = RuleSet::new();
        rules
            .add_parsed("Synthetic", SyntheticService::rule())
            .unwrap();
        let mut doc = Document::new("Resource");
        let root = doc.root();
        doc.register_resource(root, "weblab://doc/synthetic", None)
            .unwrap();
        let wf = Workflow::new()
            .then(SyntheticService::new(1, 3, 2))
            .then_parallel(vec![
                Workflow::new()
                    .then(SyntheticService::new(2, 2, 2))
                    .then(SyntheticService::new(3, 2, 2)),
                Workflow::new().then(SyntheticService::new(4, 3, 2)),
            ])
            .then(SyntheticService::new(5, 2, 2));
        let (doc, outcome, live) = run_live(doc, &wf, &rules, opts, None);
        let channels: Vec<&str> = outcome
            .trace
            .calls
            .iter()
            .map(|c| c.channel.as_str())
            .collect();
        assert_eq!(channels, vec!["", "0", "0", "1", ""]);
        assert_live_equals_batch(&doc, &outcome.trace, &rules, &opts, &live, &format!("{opts:?}"));
    }
}

#[test]
fn retried_steps_leave_no_rollback_residue_in_the_live_store() {
    let mut rules = RuleSet::new();
    rules
        .add_parsed("Synthetic", SyntheticService::rule())
        .unwrap();
    let mut doc = Document::new("Resource");
    let root = doc.root();
    doc.register_resource(root, "weblab://doc/synthetic", None)
        .unwrap();
    let wf = Workflow::new()
        .then(SyntheticService::new(1, 3, 2))
        .then(Flaky::failing(2))
        .then(SyntheticService::new(2, 3, 2));
    let opts = EngineOptions::default();
    let fault = FaultPolicy::retrying(RetryPolicy::with_max_attempts(3));
    let (doc, outcome, live) = run_live(doc, &wf, &rules, opts, Some(fault));
    // all three steps committed exactly once
    assert_eq!(outcome.trace.len(), 3);
    assert_live_equals_batch(&doc, &outcome.trace, &rules, &opts, &live, "flaky + retry");
    // rolled-back attempts registered probes that were truncated away; the
    // live source table must hold exactly the one committed probe
    let probes = live
        .sources()
        .iter()
        .filter(|s| s.label.service == "Flaky")
        .count();
    assert_eq!(probes, 1, "rolled-back probes leaked into the live store");
}

#[test]
fn skipped_steps_contribute_nothing_to_the_live_store() {
    let mut rules = RuleSet::new();
    rules
        .add_parsed("Synthetic", SyntheticService::rule())
        .unwrap();
    let mut doc = Document::new("Resource");
    let root = doc.root();
    doc.register_resource(root, "weblab://doc/synthetic", None)
        .unwrap();
    let wf = Workflow::new()
        .then(SyntheticService::new(1, 3, 2))
        .then(Flaky::failing(u32::MAX)) // never succeeds → skipped
        .then(SyntheticService::new(2, 3, 2));
    let opts = EngineOptions::default();
    let (doc, outcome, live) = run_live(doc, &wf, &rules, opts, Some(FaultPolicy::skipping()));
    // the skipped step never committed: two recorded calls only
    assert_eq!(outcome.trace.len(), 2);
    assert_live_equals_batch(&doc, &outcome.trace, &rules, &opts, &live, "flaky + skip");
    assert!(
        !live.sources().iter().any(|s| s.label.service == "Flaky"),
        "a skipped step's rolled-back work reached the live store"
    );
}

#[test]
fn live_turtle_export_is_byte_identical_to_batch_on_the_paper_example() {
    let (doc, trace, rules) = paper_example::build();
    for inherit in [
        InheritMode::Off,
        InheritMode::PatternRewrite,
        InheritMode::GraphPropagation,
    ] {
        let opts = EngineOptions {
            inherit,
            ..Default::default()
        };
        let mut live = LiveProvenance::new(rules.clone(), opts);
        let mut store = LiveProvStore::new();
        store.apply(&live.catch_up(&doc, &ExecutionTrace::default()));
        for k in 0..trace.calls.len() {
            store.apply(&live.observe_call(&doc, &trace, k));
        }
        let batch_graph = infer_provenance(&doc, &trace, &rules, &opts);
        let mut batch = TripleStore::new();
        export_prov_into(&batch_graph, &mut batch);
        let live_triples: Vec<Triple> = store.store().iter().collect();
        let batch_triples: Vec<Triple> = batch.iter().collect();
        assert_eq!(
            to_turtle(&live_triples),
            to_turtle(&batch_triples),
            "Turtle output diverges under {inherit:?}"
        );
    }
}

#[test]
fn cli_live_link_store_matches_batch_inference_on_the_stamped_output() {
    use std::process::Command;
    let bin = env!("CARGO_BIN_EXE_weblab");
    let dir = std::env::temp_dir().join(format!("weblab-live-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let stamped = dir.join("stamped.xml");
    let links = dir.join("run.links");
    let status = Command::new(bin)
        .args([
            "run",
            concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample_corpus.xml"),
            "Normaliser,flaky:2,LanguageExtractor,Translator",
            "--retries",
            "2",
            "--live",
        ])
        .arg("--link-store")
        .arg(&links)
        .arg("-o")
        .arg(&stamped)
        .status()
        .expect("spawn weblab");
    assert!(status.success(), "weblab run --live failed");

    // the persisted store carries its integrity footer…
    let text = std::fs::read_to_string(&links).unwrap();
    let n_links = text.lines().filter(|l| l.starts_with("link:")).count();
    assert_eq!(
        text.lines().next_back().unwrap(),
        format!("# end links={n_links}"),
        "link store footer missing or wrong"
    );

    // …and its link set equals batch inference over the stamped document
    let xml = std::fs::read_to_string(&stamped).unwrap();
    let doc = weblab::xml::parse_document(&xml).unwrap();
    let trace = ExecutionTrace::reconstruct_from(&doc);
    let batch = infer_provenance(
        &doc,
        &trace,
        &weblab::workflow::services::default_rules(),
        &EngineOptions::default(),
    );
    let mut batch_pairs = sorted_pairs(&batch);
    batch_pairs.sort();
    let mut live_pairs: Vec<(String, String)> = text
        .lines()
        .filter_map(|l| l.strip_prefix("link:"))
        .filter_map(|rest| {
            rest.split_once('|')
                .map(|(a, b)| (a.trim().to_string(), b.trim().to_string()))
        })
        .collect();
    live_pairs.sort();
    assert_eq!(live_pairs, batch_pairs);
    let _ = std::fs::remove_dir_all(&dir);
}
