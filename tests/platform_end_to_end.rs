//! Integration tests across the full Figure 5 architecture: ingest →
//! execute → record → materialise → SPARQL, through both mapper back-ends
//! and through the out-of-process exchange path.
//!
//! Written against the `ExecutionHandle` façade (`Platform::execution`),
//! the one per-execution surface the platform exposes.

use std::sync::Arc;

use weblab::platform::{Mapper, Platform};
use weblab::rdf::vocab::{activity_iri, PROV_NS};
use weblab::rdf::Term;
use weblab::workflow::generator::generate_corpus;
use weblab::workflow::services::{
    self, EntityExtractor, Indexer, KeywordExtractor, LanguageExtractor, Normaliser,
    SentimentAnalyser, Summariser, Tokeniser, Translator,
};
use weblab::xml::{to_xml_string, CallLabel, Document};

fn full_platform(mapper: Mapper) -> Platform {
    let p = Platform::new(mapper);
    let rules = services::default_rules();
    let register = |p: &Platform, svc: Arc<dyn weblab::workflow::Service>| {
        let name = svc.name().to_string();
        let texts: Vec<String> = rules
            .rules_for(&name)
            .iter()
            .map(|r| r.to_string())
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        p.register_service(svc, &refs).unwrap();
    };
    register(&p, Arc::new(Normaliser));
    register(&p, Arc::new(LanguageExtractor));
    register(&p, Arc::new(Translator::default()));
    register(&p, Arc::new(Tokeniser));
    register(&p, Arc::new(EntityExtractor));
    register(&p, Arc::new(SentimentAnalyser));
    register(&p, Arc::new(KeywordExtractor));
    register(&p, Arc::new(Summariser));
    register(&p, Arc::new(Indexer));
    p
}

const PIPELINE: &[&str] = &[
    "Normaliser",
    "LanguageExtractor",
    "Translator",
    "LanguageExtractor",
    "Tokeniser",
    "EntityExtractor",
    "SentimentAnalyser",
    "KeywordExtractor",
    "Summariser",
    "Indexer",
];

#[test]
fn end_to_end_media_mining_with_native_mapper() {
    let p = full_platform(Mapper::native());
    p.ingest("exec", generate_corpus(17, 3, 40));
    p.execute("exec", PIPELINE).unwrap();

    let graph = p.execution("exec").graph().unwrap();
    assert!(graph.is_acyclic());
    assert!(graph.links.len() >= 6);

    // SPARQL: which activities used which entities?
    let sols = p.execution("exec")
        .sparql(
            &format!(
                "PREFIX prov: <{PROV_NS}> SELECT ?a ?e WHERE {{ ?a prov:used ?e . }}"
            ),
        )
        .unwrap();
    assert!(!sols.is_empty());

    // transitive question through a two-hop BGP: summaries ultimately
    // trace back to native content
    let sols = p.execution("exec")
        .sparql(
            &format!(
                "PREFIX prov: <{PROV_NS}> SELECT ?summary ?src WHERE {{ \
                   ?summary prov:wasDerivedFrom ?mid . \
                   ?mid prov:wasDerivedFrom ?src . }}"
            ),
        )
        .unwrap();
    assert!(sols
        .iter()
        .any(|s| matches!(&s["src"], Term::Iri(i) if i.starts_with("weblab://src/"))));
}

#[test]
fn xquery_mapper_agrees_with_native_on_the_pipeline() {
    // all default_rules are position-free, so both mappers handle them
    let native = full_platform(Mapper::native());
    let compiled = full_platform(Mapper::xquery());
    for p in [&native, &compiled] {
        p.ingest("e", generate_corpus(23, 2, 35));
        p.execute("e", PIPELINE).unwrap();
    }
    let g1 = native.execution("e").graph().unwrap();
    let g2 = compiled.execution("e").graph().unwrap();
    assert_eq!(g1.links, g2.links);
    assert!(!g1.links.is_empty());
}

#[test]
fn exchange_based_recording_matches_in_process_execution() {
    // Run the pipeline in-process, then replay the same evolution through
    // the Recorder's XML-exchange path and verify the traces agree.
    let p = full_platform(Mapper::native());
    p.ingest("in-process", generate_corpus(5, 1, 30));
    p.execute("in-process", &["Normaliser", "LanguageExtractor"])
        .unwrap();
    let g_in = p.execution("in-process").graph().unwrap();

    // simulate the SOAP flow: serialise after each step and hand the full
    // response to the recorder
    let q = full_platform(Mapper::native());
    let doc0 = generate_corpus(5, 1, 30);
    q.ingest("exchange", doc0.clone());

    // step 1: run Normaliser out-of-band on a copy, serialise the result
    let mut side = doc0.clone();
    let mut ctx = weblab::workflow::CallContext::new("Normaliser", 1);
    use weblab::workflow::Service as _;
    Normaliser.call(&mut side, &mut ctx).unwrap();
    let response1 = to_xml_string(&side.view());
    q.recorder()
        .record_exchange("exchange", "Normaliser", 1, &response1)
        .unwrap();

    // step 2: LanguageExtractor on the updated copy
    let mut ctx = weblab::workflow::CallContext::new("LanguageExtractor", 2);
    LanguageExtractor.call(&mut side, &mut ctx).unwrap();
    let response2 = to_xml_string(&side.view());
    q.recorder()
        .record_exchange("exchange", "LanguageExtractor", 2, &response2)
        .unwrap();

    let g_ex = q.execution("exchange").graph().unwrap();
    let pairs = |g: &weblab::prov::ProvenanceGraph| {
        let mut v: Vec<(String, String)> = g
            .links
            .iter()
            .map(|l| (l.from_uri.clone(), l.to_uri.clone()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(pairs(&g_in), pairs(&g_ex));
    assert!(!g_ex.links.is_empty());
}

#[test]
fn repeated_execution_extends_the_same_document() {
    let p = full_platform(Mapper::native());
    p.ingest("e", generate_corpus(9, 1, 25));
    p.execute("e", &["Normaliser"]).unwrap();
    p.execute("e", &["LanguageExtractor"]).unwrap();
    // timestamps continue across execute() calls
    let g = p.execution("e").graph().unwrap();
    let times: Vec<u64> = g.sources.iter().map(|s| s.label.time).collect();
    assert!(times.contains(&1));
    assert!(times.contains(&2));
}

#[test]
fn skolem_aggregation_flows_through_the_platform() {
    // Indexer groups language annotations into IndexEntry resources via the
    // Skolem rule idx($l) — verify the links materialise and export to RDF.
    let p = full_platform(Mapper::native());

    // bilingual corpus: one French and one English native doc
    let mut doc = Document::new("Resource");
    let root = doc.root();
    doc.register_resource(root, "weblab://doc/skolem", None)
        .unwrap();
    for (i, text) in [
        "le texte est dans la langue pour la paix",
        "the text is in the language for peace",
    ]
    .iter()
    .enumerate()
    {
        let n = doc.append_element(root, "NativeContent").unwrap();
        doc.register_resource(
            n,
            format!("weblab://src/{i}"),
            Some(CallLabel::new("Source", 0)),
        )
        .unwrap();
        doc.append_text(n, *text).unwrap();
    }
    p.ingest("e", doc);
    p.execute("e", &["Normaliser", "LanguageExtractor", "Indexer"])
        .unwrap();
    let g = p.execution("e").graph().unwrap();
    // two index entries (fr, en), each depending on its annotation(s)
    let entry_deps: Vec<_> = g
        .links
        .iter()
        .filter(|l| l.from_uri.contains("Indexer"))
        .collect();
    assert_eq!(entry_deps.len(), 2);

    // and the Indexer activity appears in the provenance store
    let sols = p.execution("e")
        .sparql(
            &format!(
                "PREFIX prov: <{PROV_NS}> SELECT ?e WHERE {{ \
                   ?e prov:wasGeneratedBy <{}> . }}",
                activity_iri("Indexer", 3)
            ),
        )
        .unwrap();
    assert_eq!(sols.len(), 3); // the Index container + 2 entries
}
