//! Replay differential suite: provenance-guided incremental recomputation
//! must be *indistinguishable* from a full re-run on the changed input.
//!
//! For a prior execution, a structure-preserving change to some source
//! artifacts, and the closed dirty cone ([`dirty_cone_closed`] over the
//! inherit-mode provenance graph), `Orchestrator::replay` re-executes only
//! the dirty steps and splices every other fragment forward. The
//! differential law checked here, across every inference strategy and
//! worker count and for both live and batch provenance:
//!
//! * the replayed document serialises byte-identically to a full re-run;
//! * the trace records (marks, produced ids, labels) are equal;
//! * the inferred link sets and the Turtle export are equal;
//! * `--proof exact` passes (every reused fragment re-executes
//!   byte-identically) for deterministic services, and fails loudly for a
//!   nondeterministic one, which `--proof concordant` instead grades
//!   within a tolerance.
//!
//! A property-based sweep drives random pipelines and random changed-URI
//! subsets through the same law and pins the *exact* recomputed set: a
//! call is re-executed iff its produced resources intersect the closed
//! cone, and every reused fragment is byte-identical to its original.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use weblab::prov::{
    dirty_cone, infer_provenance, EngineOptions, ExecutionTrace, InheritMode,
    LiveProvenance, Parallelism, ProvenanceGraph, ReachabilityIndex, Strategy,
};
use weblab::rdf::{export_prov, to_turtle};
use weblab::workflow::services::{
    self, LanguageExtractor, Normaliser, Tokeniser, Translator,
};
use weblab::workflow::{
    CallContext, Orchestrator, ProofMode, Service, Workflow, WorkflowError,
};
use weblab::xml::{to_xml_string, CallLabel, Document};

// ---------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------

/// Build a corpus with one text `NativeContent` per payload, registered as
/// `weblab://src/{i}` with the ingestion label `(Source, 0)`. Rebuilding
/// with an edited payload is the test-side equivalent of re-parsing an
/// edited XML file: same arena shape, changed content.
fn corpus(payloads: &[&str]) -> Document {
    let mut d = Document::new("Resource");
    let root = d.root();
    d.register_resource(root, "weblab://doc/test", None).unwrap();
    for (i, text) in payloads.iter().enumerate() {
        let n = d.append_element(root, "NativeContent").unwrap();
        d.set_attr(n, "mime", "text/plain").unwrap();
        d.register_resource(n, format!("weblab://src/{i}"), Some(CallLabel::new("Source", 0)))
            .unwrap();
        d.append_text(n, *text).unwrap();
    }
    d
}

fn pipeline() -> Workflow {
    Workflow::new()
        .then(Normaliser)
        .then(LanguageExtractor)
        .then(Translator::default())
        .then(Tokeniser)
}

/// The dirty cone of `changed` for a finished execution, computed the way
/// the CLI computes it: inherit-mode inference (so contained resources
/// are linked to their source) and the impacted-by closure over the
/// reachability index.
fn closed_cone(doc: &Document, trace: &ExecutionTrace, changed: &[String]) -> HashSet<String> {
    let rules = services::default_rules();
    let graph = infer_provenance(
        doc,
        trace,
        &rules,
        &EngineOptions {
            inherit: InheritMode::PatternRewrite,
            ..Default::default()
        },
    );
    let index = ReachabilityIndex::from_graph(&graph);
    dirty_cone(&index, changed).into_iter().collect()
}

fn sorted_pairs(g: &ProvenanceGraph) -> Vec<(String, String)> {
    let mut pairs: Vec<(String, String)> = g
        .links
        .iter()
        .map(|l| (l.from_uri.clone(), l.to_uri.clone()))
        .collect();
    pairs.sort();
    pairs.dedup();
    pairs
}

/// Every engine configuration the differential sweep covers: the three
/// inference strategies crossed with 1/2/4 inference workers.
fn all_opts() -> Vec<EngineOptions> {
    let mut out = Vec::new();
    for strategy in [
        Strategy::StateReplay { materialize: false },
        Strategy::TemporalRewrite,
        Strategy::GroupedSinglePass,
    ] {
        for parallelism in [
            Parallelism::Sequential,
            Parallelism::Threads(2),
            Parallelism::Threads(4),
        ] {
            out.push(EngineOptions {
                strategy,
                parallelism,
                ..Default::default()
            });
        }
    }
    out
}

const PRIOR: [&str; 3] = [
    "le rapport de Geneve est dans la langue de la paix",
    "The report from Geneva is in the language of peace and the data is good.",
    "the archive holds a second report about the data",
];

/// Run the full differential for one changed corpus + dirty set: replay
/// under `--proof exact` must match a fresh full re-run on every axis.
fn assert_replay_equals_rerun(changed_payloads: [&str; 3], changed_uris: &[&str]) {
    let wf = pipeline();
    let mut prior_doc = corpus(&PRIOR);
    let prior = Orchestrator::new().execute(&wf, &mut prior_doc).expect("prior run");

    let changed: Vec<String> = changed_uris.iter().map(|s| s.to_string()).collect();
    let dirty = closed_cone(&prior_doc, &prior.trace, &changed);

    let mut replayed_doc = corpus(&changed_payloads);
    let replayed = Orchestrator::new()
        .replay(&wf, &mut replayed_doc, &prior_doc, &prior.trace, &dirty, ProofMode::Exact)
        .expect("replay");

    let mut full_doc = corpus(&changed_payloads);
    let full = Orchestrator::new().execute(&wf, &mut full_doc).expect("full re-run");

    // Document bytes, trace records and per-fragment identity.
    assert_eq!(
        to_xml_string(&replayed_doc.view()),
        to_xml_string(&full_doc.view()),
        "replayed document diverges from the full re-run"
    );
    assert_eq!(
        replayed.outcome.trace.calls, full.trace.calls,
        "replayed trace diverges from the full re-run"
    );
    assert_eq!(replayed.reused + replayed.recomputed, wf.len());
    assert!(
        replayed.grades.iter().all(|g| g.identical && g.grade == 1.0),
        "a reused fragment failed exact verification: {:?}",
        replayed.grades
    );

    // Link sets and Turtle export, for every strategy and worker count.
    let rules = services::default_rules();
    for opts in all_opts() {
        let a = infer_provenance(&replayed_doc, &replayed.outcome.trace, &rules, &opts);
        let b = infer_provenance(&full_doc, &full.trace, &rules, &opts);
        assert_eq!(
            sorted_pairs(&a),
            sorted_pairs(&b),
            "link sets diverge under {opts:?}"
        );
        assert_eq!(
            to_turtle(&export_prov(&a)),
            to_turtle(&export_prov(&b)),
            "Turtle export diverges under {opts:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Differential matrix
// ---------------------------------------------------------------------

#[test]
fn replay_of_one_changed_source_matches_a_full_rerun() {
    assert_replay_equals_rerun(
        [
            PRIOR[0],
            "The URGENT report from Geneva is in the language of war and the data is bad.",
            PRIOR[2],
        ],
        &["weblab://src/1"],
    );
}

#[test]
fn replay_of_a_multi_artifact_dirty_set_matches_a_full_rerun() {
    assert_replay_equals_rerun(
        [
            "le rapport est dans la langue de la guerre",
            PRIOR[1],
            "the archive holds a REVISED report about the data",
        ],
        &["weblab://src/0", "weblab://src/2"],
    );
}

#[test]
fn noop_replay_reuses_every_fragment() {
    let wf = pipeline();
    let mut prior_doc = corpus(&PRIOR);
    let prior = Orchestrator::new().execute(&wf, &mut prior_doc).expect("prior run");

    let mut replayed_doc = corpus(&PRIOR);
    let replayed = Orchestrator::new()
        .replay(
            &wf,
            &mut replayed_doc,
            &prior_doc,
            &prior.trace,
            &HashSet::new(),
            ProofMode::Exact,
        )
        .expect("no-op replay");
    assert_eq!(replayed.recomputed, 0, "an empty cone must recompute nothing");
    assert_eq!(replayed.reused, wf.len());
    assert_eq!(replayed.splices, wf.len());
    assert_eq!(
        to_xml_string(&replayed_doc.view()),
        to_xml_string(&prior_doc.view()),
        "a no-op replay must reproduce the prior document byte-for-byte"
    );
    assert_eq!(replayed.outcome.trace.calls, prior.trace.calls);
}

#[test]
fn replay_under_live_provenance_matches_batch_inference() {
    let wf = pipeline();
    let mut prior_doc = corpus(&PRIOR);
    let prior = Orchestrator::new().execute(&wf, &mut prior_doc).expect("prior run");
    let changed = vec!["weblab://src/1".to_string()];
    let dirty = closed_cone(&prior_doc, &prior.trace, &changed);
    let changed_payloads = [PRIOR[0], "a different English report entirely", PRIOR[2]];

    let rules = services::default_rules();
    for opts in all_opts() {
        // Live maintainer fed by the replay orchestrator's call hook —
        // spliced calls must look exactly like executed ones to it.
        let mut replayed_doc = corpus(&changed_payloads);
        let maintainer = Arc::new(Mutex::new(LiveProvenance::new(rules.clone(), opts)));
        maintainer.lock().unwrap().catch_up(&replayed_doc, &ExecutionTrace::default());
        let hook = Arc::clone(&maintainer);
        let orch = Orchestrator::new().with_call_hook(Arc::new(move |d, t, i| {
            hook.lock().unwrap().observe_call(d, t, i);
        }));
        let replayed = orch
            .replay(&wf, &mut replayed_doc, &prior_doc, &prior.trace, &dirty, ProofMode::Trusted)
            .expect("replay");
        drop(orch);
        let mut live = match Arc::try_unwrap(maintainer) {
            Ok(m) => m.into_inner().unwrap(),
            Err(_) => panic!("maintainer uniquely owned after the orchestrator is dropped"),
        };
        live.catch_up(&replayed_doc, &replayed.outcome.trace);

        let batch = infer_provenance(&replayed_doc, &replayed.outcome.trace, &rules, &opts);
        assert_eq!(
            sorted_pairs(&live.to_provenance_graph()),
            sorted_pairs(&batch),
            "live provenance diverges from batch over a replayed execution under {opts:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Graded verification of a nondeterministic service
// ---------------------------------------------------------------------

/// A deterministically-shaped but nondeterministically-valued service:
/// each call appends one `Noise` element with nine stable text lines and
/// one process-global nonce line, so a sandbox re-execution matches on
/// 11 of 12 signature lines (Dice ≈ 0.92): enough to clear a lenient
/// concordance tolerance, never byte-identical.
struct Noisy;

static NONCE: AtomicU64 = AtomicU64::new(0);

impl Service for Noisy {
    fn name(&self) -> &str {
        "Noisy"
    }

    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let root = doc.root();
        let el = doc.append_element(root, "Noise")?;
        for i in 0..9 {
            doc.append_text(el, format!("stable line {i}"))?;
        }
        let nonce = NONCE.fetch_add(1, Ordering::SeqCst);
        doc.append_text(el, format!("nonce {nonce}"))?;
        ctx.register(doc, el)?;
        Ok(())
    }
}

#[test]
fn exact_proof_rejects_a_nondeterministic_reused_service() {
    let wf = Workflow::new().then(Noisy);
    let mut prior_doc = corpus(&PRIOR);
    let prior = Orchestrator::new().execute(&wf, &mut prior_doc).expect("prior run");

    // Empty cone: the Noisy call is reused, and verification re-executes it.
    let mut replayed_doc = corpus(&PRIOR);
    let err = Orchestrator::new()
        .replay(
            &wf,
            &mut replayed_doc,
            &prior_doc,
            &prior.trace,
            &HashSet::new(),
            ProofMode::Exact,
        )
        .expect_err("exact proof must reject a nondeterministic service");
    let msg = err.to_string();
    assert!(
        msg.contains("nondeterministic"),
        "error should name the failure mode: {msg}"
    );

    // Concordant mode grades the same divergence within a tolerance…
    let mut replayed_doc = corpus(&PRIOR);
    let replayed = Orchestrator::new()
        .replay(
            &wf,
            &mut replayed_doc,
            &prior_doc,
            &prior.trace,
            &HashSet::new(),
            ProofMode::Concordant { tolerance: 0.8 },
        )
        .expect("concordant replay");
    assert_eq!(replayed.grades.len(), 1);
    let g = &replayed.grades[0];
    assert_eq!(g.service, "Noisy");
    assert!(!g.identical);
    assert!(g.grade > 0.8 && g.grade < 1.0, "grade {g:?} outside (0.8, 1)");

    // …and rejects it under a tolerance the grade cannot clear.
    let mut replayed_doc = corpus(&PRIOR);
    let err = Orchestrator::new()
        .replay(
            &wf,
            &mut replayed_doc,
            &prior_doc,
            &prior.trace,
            &HashSet::new(),
            ProofMode::Concordant { tolerance: 0.99 },
        )
        .expect_err("tolerance above the grade must reject");
    assert!(err.to_string().contains("concordance tolerance"));
}

// ---------------------------------------------------------------------
// Property-based sweep
// ---------------------------------------------------------------------

const WORDS: [&str; 8] = ["report", "data", "archive", "peace", "war", "Geneva", "Paris", "good"];

fn payload(seed: u64, salt: u64) -> String {
    let mut words = Vec::new();
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(salt);
    for _ in 0..6 {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        words.push(WORDS[(s >> 33) as usize % WORDS.len()]);
    }
    words.join(" ")
}

/// Build the workflow encoded by `stages`: always `Normaliser` first (so
/// units exist), then any subsequence of the analysis services — possibly
/// with repeats, which execute as no-op calls producing empty fragments.
fn workflow_from(stages: &[u8]) -> Workflow {
    let mut wf = Workflow::new().then(Normaliser);
    for &s in stages {
        wf = match s % 3 {
            0 => wf.then(LanguageExtractor),
            1 => wf.then(Translator::default()),
            _ => wf.then(Tokeniser),
        };
    }
    wf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For random pipelines and random changed-source subsets: the set of
    /// re-executed calls is *exactly* the set of prior calls whose
    /// produced resources intersect the closed dirty cone; every reused
    /// fragment re-executes byte-identically (exact proof passes); and the
    /// replayed document equals a full re-run byte-for-byte.
    #[test]
    fn recomputed_set_equals_the_dirty_cone_and_reuse_is_exact(
        stages in prop::collection::vec(any::<u8>(), 0..4),
        n_src in 2usize..5,
        seed in any::<u64>(),
        mask in any::<u32>(),
    ) {
        let wf = workflow_from(&stages);
        let payloads: Vec<String> = (0..n_src).map(|i| payload(seed, i as u64)).collect();
        let refs: Vec<&str> = payloads.iter().map(String::as_str).collect();
        let mut prior_doc = corpus(&refs);
        let prior = Orchestrator::new().execute(&wf, &mut prior_doc).expect("prior run");

        // Mutate the masked subset of sources.
        let changed_uris: Vec<String> = (0..n_src)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| format!("weblab://src/{i}"))
            .collect();
        let changed_payloads: Vec<String> = (0..n_src)
            .map(|i| {
                if mask & (1 << i) != 0 {
                    payload(seed ^ 0xdead_beef, i as u64)
                } else {
                    payloads[i].clone()
                }
            })
            .collect();
        let changed_refs: Vec<&str> = changed_payloads.iter().map(String::as_str).collect();

        let dirty = closed_cone(&prior_doc, &prior.trace, &changed_uris);

        // The expected recomputed set, straight from the cone definition.
        let expected_dirty: HashSet<(String, u64)> = prior
            .trace
            .calls
            .iter()
            .filter(|c| {
                c.produced.iter().any(|&n| {
                    prior_doc.resource(n).is_some_and(|m| dirty.contains(&m.uri))
                })
            })
            .map(|c| (c.service.clone(), c.time))
            .collect();

        let mut replayed_doc = corpus(&changed_refs);
        let replayed = Orchestrator::new()
            .replay(&wf, &mut replayed_doc, &prior_doc, &prior.trace, &dirty, ProofMode::Exact)
            .expect("replay");

        // Under exact proof every reused call is graded, so the reused set
        // is observable: grades ∪ expected_dirty must partition the calls.
        let reused: HashSet<(String, u64)> = replayed
            .grades
            .iter()
            .map(|g| (g.service.clone(), g.time))
            .collect();
        prop_assert_eq!(replayed.recomputed, expected_dirty.len());
        prop_assert_eq!(replayed.reused, prior.trace.calls.len() - expected_dirty.len());
        for c in &prior.trace.calls {
            let key = (c.service.clone(), c.time);
            if expected_dirty.contains(&key) {
                prop_assert!(!reused.contains(&key), "dirty call {key:?} was spliced");
            } else {
                prop_assert!(reused.contains(&key), "clean call {key:?} was re-executed");
            }
        }
        prop_assert!(
            replayed.grades.iter().all(|g| g.identical && g.grade == 1.0),
            "a reused fragment was not byte-identical: {:?}",
            replayed.grades
        );

        let mut full_doc = corpus(&changed_refs);
        let full = Orchestrator::new().execute(&wf, &mut full_doc).expect("full re-run");
        prop_assert_eq!(
            to_xml_string(&replayed_doc.view()),
            to_xml_string(&full_doc.view()),
            "replayed document diverges from the full re-run"
        );
        prop_assert_eq!(&replayed.outcome.trace.calls, &full.trace.calls);
    }
}
