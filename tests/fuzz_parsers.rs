//! Robustness: every parser in the workspace must return `Err` on garbage,
//! never panic — and must be total over arbitrary near-miss inputs derived
//! from valid ones.

use proptest::prelude::*;

use weblab::platform::ServiceCatalog;
use weblab::prov::MappingRule;
use weblab::rdf::{parse_select, parse_turtle, to_turtle, Term, Triple};
use weblab::xml::parse_document;
use weblab::xpath::parse_pattern;
use weblab::xquery::parse_query;

/// Strategy for one triple: IRI subject and predicate; the object is (by
/// `kind`) an IRI, a plain literal over the charset the writer escapes
/// losslessly (printable ASCII plus tab/newline), or an `xsd:integer`.
fn triple() -> impl Strategy<Value = Triple> {
    (
        "[a-zA-Z0-9_]{1,8}",
        "[a-zA-Z0-9_]{1,8}",
        0u8..3,
        "[ -~\\t\\n]{0,20}",
        any::<i64>(),
    )
        .prop_map(|(s, p, kind, lit, int)| {
            let o = match kind {
                0 => Term::iri(format!("http://ex.org/o_{s}")),
                1 => Term::lit(lit),
                _ => Term::int(int),
            };
            Triple::new(
                Term::iri(format!("http://ex.org/{s}")),
                Term::iri(format!("http://ex.org/{p}")),
                o,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn xml_parser_never_panics(input in ".{0,200}") {
        let _ = parse_document(&input);
    }

    #[test]
    fn xml_parser_never_panics_on_taglike_input(
        input in "[<>/a-z \"'=&;]{0,100}"
    ) {
        let _ = parse_document(&input);
    }

    #[test]
    fn pattern_parser_never_panics(input in ".{0,120}") {
        let _ = parse_pattern(&input);
    }

    #[test]
    fn pattern_parser_never_panics_on_patternlike_input(
        input in "[/\\[\\]@$:= a-zA-Z0-9'<>!-]{0,80}"
    ) {
        let _ = parse_pattern(&input);
    }

    #[test]
    fn rule_parser_never_panics(input in ".{0,160}") {
        let _ = MappingRule::parse(&input);
    }

    #[test]
    fn xquery_parser_never_panics(
        input in "[a-z$/{}<>\"'= ,.:\\[\\]0-9]{0,120}"
    ) {
        let _ = parse_query(&input);
    }

    #[test]
    fn sparql_parser_never_panics(
        input in "[A-Za-z?<>{}=!\\. :#/\"']{0,120}"
    ) {
        let _ = parse_select(&input);
    }

    #[test]
    fn turtle_parser_never_panics(
        input in "[a-z<>@:\\.;,\"_ \\^#-]{0,120}"
    ) {
        let _ = parse_turtle(&input);
    }

    #[test]
    fn catalog_parser_never_panics(input in ".{0,200}") {
        let _ = ServiceCatalog::from_text(&input);
    }

    #[test]
    fn mutated_valid_pattern_never_panics(
        flip in 0usize..60,
        ch in prop::char::any(),
    ) {
        let base = "//TextMediaUnit[$x := @id]/Annotation[Language = 'fr']";
        let mut bytes: Vec<char> = base.chars().collect();
        if flip < bytes.len() {
            bytes[flip] = ch;
        }
        let mutated: String = bytes.into_iter().collect();
        let _ = parse_pattern(&mutated);
        let _ = MappingRule::parse(&format!("{mutated} => //X"));
    }

    #[test]
    fn mutated_valid_xquery_never_panics(
        flip in 0usize..90,
        ch in prop::char::any(),
    ) {
        let base = "for $v in //TextMediaUnit let $x := $v/@id \
                    where $v/@id = 'u1' \
                    return <hit from=\"{$x}\" to=\"-\"/>";
        let mut chars: Vec<char> = base.chars().collect();
        if flip < chars.len() {
            chars[flip] = ch;
        }
        let mutated: String = chars.into_iter().collect();
        let _ = parse_query(&mutated);
    }

    #[test]
    fn turtle_writer_round_trips(triples in prop::collection::vec(triple(), 0..12)) {
        let ttl = to_turtle(&triples);
        let mut parsed = parse_turtle(&ttl)
            .unwrap_or_else(|e| panic!("writer output must reparse: {e}\n{ttl}"));
        let mut original = triples;
        parsed.sort();
        original.sort();
        prop_assert_eq!(parsed, original);
    }

    /// Hostile URIs — angle brackets, quotes, braces, backslashes, control
    /// characters — must survive the writer → parser round trip via the
    /// IRIREF `\u` escapes, not corrupt neighbouring triples.
    #[test]
    fn turtle_writer_round_trips_hostile_iris(
        evil in "[a-z<>\"{}|\\^`\\\\\\t\\n ]{0,24}",
        tail in "[a-zA-Z0-9_]{1,8}",
    ) {
        let triples = vec![
            Triple::new(
                Term::iri(format!("http://ex.org/{evil}")),
                Term::iri(format!("http://ex.org/p_{tail}")),
                Term::iri(format!("http://ex.org/{evil}#{tail}")),
            ),
            Triple::new(
                Term::iri(format!("http://ex.org/{tail}")),
                Term::iri(format!("http://ex.org/p_{tail}")),
                Term::lit("witness"),
            ),
        ];
        let ttl = to_turtle(&triples);
        let mut parsed = parse_turtle(&ttl)
            .unwrap_or_else(|e| panic!("writer output must reparse: {e}\n{ttl}"));
        let mut original = triples;
        parsed.sort();
        original.sort();
        prop_assert_eq!(parsed, original);
    }
}
