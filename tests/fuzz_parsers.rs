//! Robustness: every parser in the workspace must return `Err` on garbage,
//! never panic — and must be total over arbitrary near-miss inputs derived
//! from valid ones.

use proptest::prelude::*;

use weblab::platform::ServiceCatalog;
use weblab::prov::MappingRule;
use weblab::rdf::{parse_select, parse_turtle};
use weblab::xml::parse_document;
use weblab::xpath::parse_pattern;
use weblab::xquery::parse_query;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn xml_parser_never_panics(input in ".{0,200}") {
        let _ = parse_document(&input);
    }

    #[test]
    fn xml_parser_never_panics_on_taglike_input(
        input in "[<>/a-z \"'=&;]{0,100}"
    ) {
        let _ = parse_document(&input);
    }

    #[test]
    fn pattern_parser_never_panics(input in ".{0,120}") {
        let _ = parse_pattern(&input);
    }

    #[test]
    fn pattern_parser_never_panics_on_patternlike_input(
        input in "[/\\[\\]@$:= a-zA-Z0-9'<>!-]{0,80}"
    ) {
        let _ = parse_pattern(&input);
    }

    #[test]
    fn rule_parser_never_panics(input in ".{0,160}") {
        let _ = MappingRule::parse(&input);
    }

    #[test]
    fn xquery_parser_never_panics(
        input in "[a-z$/{}<>\"'= ,.:\\[\\]0-9]{0,120}"
    ) {
        let _ = parse_query(&input);
    }

    #[test]
    fn sparql_parser_never_panics(
        input in "[A-Za-z?<>{}=!\\. :#/\"']{0,120}"
    ) {
        let _ = parse_select(&input);
    }

    #[test]
    fn turtle_parser_never_panics(
        input in "[a-z<>@:\\.;,\"_ \\^#-]{0,120}"
    ) {
        let _ = parse_turtle(&input);
    }

    #[test]
    fn catalog_parser_never_panics(input in ".{0,200}") {
        let _ = ServiceCatalog::from_text(&input);
    }

    #[test]
    fn mutated_valid_pattern_never_panics(
        flip in 0usize..60,
        ch in prop::char::any(),
    ) {
        let base = "//TextMediaUnit[$x := @id]/Annotation[Language = 'fr']";
        let mut bytes: Vec<char> = base.chars().collect();
        if flip < bytes.len() {
            bytes[flip] = ch;
        }
        let mutated: String = bytes.into_iter().collect();
        let _ = parse_pattern(&mutated);
        let _ = MappingRule::parse(&format!("{mutated} => //X"));
    }
}
