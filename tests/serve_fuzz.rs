//! Transport-layer fuzz and robustness tests for the serve event loop.
//!
//! Every scenario throws hostile input at a real TCP server — malformed
//! JSON, truncated and interleaved lines, oversized batches, newline-less
//! floods, mid-request disconnects, shed-inducing bursts — and asserts
//! the daemon neither panics nor hangs, answers only with stable error
//! codes, and keeps serving well-formed clients afterwards. The tests
//! complete (rather than time out) only if no connection can pin the
//! server, which is the regression guard for the old blocking
//! `read_line` worker pool.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use weblab::json::Json;
use weblab::platform::{Mapper, Platform};
use weblab::serve::Server;

/// A served bare platform (no services registered — `status`, `ingest`
/// and error paths are all the fuzz cases need).
fn spawn(server: Server) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let addr = server.local_addr().unwrap();
    (addr, thread::spawn(move || server.run(1)))
}

fn bare_platform() -> Arc<Platform> {
    Arc::new(Platform::new(Mapper::native()))
}

fn connect(addr: &SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn send(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
}

fn recv(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.ends_with('\n'), "response not newline-terminated");
    Json::parse(line.trim_end()).expect("response must be valid JSON")
}

fn code_of(response: &Json) -> Option<String> {
    response
        .get("code")
        .and_then(Json::as_str)
        .map(str::to_string)
}

fn shutdown(addr: &SocketAddr, server: JoinHandle<std::io::Result<()>>) {
    let (mut stream, mut reader) = connect(addr);
    send(&mut stream, "{\"op\":\"shutdown\"}");
    let bye = recv(&mut reader);
    assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
    drop(stream);
    server.join().unwrap().unwrap();
}

#[test]
fn malformed_lines_get_stable_codes_and_the_connection_survives() {
    let server = Server::bind(bare_platform(), "127.0.0.1:0")
        .unwrap()
        .max_batch(4)
        .idle_timeout(None);
    let (addr, server_thread) = spawn(server);
    let (mut stream, mut reader) = connect(&addr);

    let hostile_nesting = format!("{}1{}", "[".repeat(500), "]".repeat(500));
    let cases: Vec<(String, &str)> = vec![
        ("this is not json".into(), "protocol"),
        ("{\"op\":42}".into(), "protocol"),
        ("[1,2,3]".into(), "protocol"),
        ("{\"op\":\"why\"}".into(), "protocol"),
        ("{\"op\":\"transmogrify\"}".into(), "protocol"),
        ("{\"op\":\"why\",\"exec\":\"nope\",\"uri\":\"r\"}".into(), "unknown-execution"),
        // hostile nesting: rejected by the parser's depth guard, not a
        // stack overflow
        (hostile_nesting, "protocol"),
        // batch of 5 over the max_batch(4) cap
        (
            format!(
                "{{\"op\":\"batch\",\"exec\":\"e\",\"requests\":[{}]}}",
                ["{\"op\":\"why\",\"uri\":\"r\"}"; 5].join(",")
            ),
            "batch-limit",
        ),
        ("{\"op\":\"batch\",\"exec\":\"e\",\"requests\":7}".into(), "protocol"),
    ];
    for (line, code) in &cases {
        send(&mut stream, line);
        let response = recv(&mut reader);
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "{line} must fail"
        );
        assert_eq!(
            code_of(&response).as_deref(),
            Some(*code),
            "wrong code for {line}"
        );
    }

    // a non-UTF-8 line is rejected, the connection keeps working
    stream.write_all(b"\xff\xfe\xfd{\"op\"\n").unwrap();
    assert_eq!(code_of(&recv(&mut reader)).as_deref(), Some("protocol"));

    // blank/CRLF keep-alive lines are skipped without a response
    stream.write_all(b"\n   \n\r\n").unwrap();

    // a line truncated mid-token completes across two writes (the
    // incremental reader reassembles it)
    stream.write_all(b"{\"op\":\"sta").unwrap();
    stream.flush().unwrap();
    thread::sleep(Duration::from_millis(20));
    stream.write_all(b"tus\"}\r\n").unwrap();
    let response = recv(&mut reader);
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));

    shutdown(&addr, server_thread);
}

#[test]
fn interleaved_pipelined_writes_answer_in_order_per_connection() {
    let server = Server::bind(bare_platform(), "127.0.0.1:0").unwrap();
    let (addr, server_thread) = spawn(server);
    let (mut a, mut a_reader) = connect(&addr);
    let (mut b, mut b_reader) = connect(&addr);

    // two clients write halves of their requests alternately: framing is
    // per-connection, so neither sees the other's bytes
    a.write_all(b"{\"id\":\"a\",\"op\":").unwrap();
    b.write_all(b"{\"id\":\"b\",\"op\":").unwrap();
    a.write_all(b"\"status\"}\n").unwrap();
    b.write_all(b"\"status\"}\n").unwrap();
    assert_eq!(
        recv(&mut a_reader).get("id").and_then(Json::as_str),
        Some("a")
    );
    assert_eq!(
        recv(&mut b_reader).get("id").and_then(Json::as_str),
        Some("b")
    );

    // a pipelined burst answers strictly in request order
    let burst: String = (0..100)
        .map(|i| format!("{{\"id\":{i},\"op\":\"status\"}}\n"))
        .collect();
    a.write_all(burst.as_bytes()).unwrap();
    for i in 0..100 {
        let response = recv(&mut a_reader);
        assert_eq!(
            response.get("id").and_then(Json::as_u64),
            Some(i),
            "pipelined responses must come back in request order"
        );
    }

    shutdown(&addr, server_thread);
}

#[test]
fn mid_request_disconnects_do_not_wedge_the_server() {
    let server = Server::bind(bare_platform(), "127.0.0.1:0").unwrap();
    let (addr, server_thread) = spawn(server);

    // drop mid-line, drop without reading the response, drop instantly
    {
        let (mut stream, _reader) = connect(&addr);
        stream.write_all(b"{\"op\":\"stat").unwrap();
    }
    {
        let (mut stream, _reader) = connect(&addr);
        send(&mut stream, "{\"op\":\"status\"}");
    }
    drop(connect(&addr));

    // the server still answers a well-behaved client afterwards
    let (mut stream, mut reader) = connect(&addr);
    send(&mut stream, "{\"op\":\"status\"}");
    assert_eq!(recv(&mut reader).get("ok").and_then(Json::as_bool), Some(true));
    drop(stream);

    shutdown(&addr, server_thread);
}

/// Regression test for the blocking-reader bug: a client streaming bytes
/// with no newline used to pin a `BufReader::read_line` worker forever.
/// The event loop instead enforces `max_line`: the flood gets one
/// `line-limit` error and the connection closes, while other clients
/// keep being served by the single worker.
#[test]
fn newline_less_flood_is_rejected_and_cannot_pin_the_worker() {
    let server = Server::bind(bare_platform(), "127.0.0.1:0")
        .unwrap()
        .max_line(1024)
        .idle_timeout(None);
    let (addr, server_thread) = spawn(server);

    let (mut flood, mut flood_reader) = connect(&addr);
    flood.write_all(&vec![b'a'; 4096]).unwrap(); // no newline, over max_line

    // a concurrent client is answered while the flood connection is open
    // — with workers(1), this fails if anything blocks on the flood
    let (mut other, mut other_reader) = connect(&addr);
    send(&mut other, "{\"op\":\"status\"}");
    assert_eq!(
        recv(&mut other_reader).get("ok").and_then(Json::as_bool),
        Some(true)
    );

    // the flood got exactly one line-limit error, then EOF (closed)
    let response = recv(&mut flood_reader);
    assert_eq!(code_of(&response).as_deref(), Some("line-limit"));
    let mut rest = String::new();
    flood_reader.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty(), "flood connection must be closed after the error");
    drop(flood);

    // an over-long *complete* line errors but keeps the connection:
    // framing never broke
    let long = format!("{{\"op\":\"status\",\"pad\":\"{}\"}}", "x".repeat(2048));
    send(&mut other, &long);
    assert_eq!(code_of(&recv(&mut other_reader)).as_deref(), Some("line-limit"));
    send(&mut other, "{\"op\":\"status\"}");
    assert_eq!(
        recv(&mut other_reader).get("ok").and_then(Json::as_bool),
        Some(true)
    );

    shutdown(&addr, server_thread);
}

#[test]
fn idle_connections_time_out_with_the_stable_code() {
    let server = Server::bind(bare_platform(), "127.0.0.1:0")
        .unwrap()
        .idle_timeout(Some(Duration::from_millis(60)));
    let (addr, server_thread) = spawn(server);

    // an active connection survives its first requests…
    let (mut active, mut active_reader) = connect(&addr);
    send(&mut active, "{\"op\":\"status\"}");
    assert_eq!(
        recv(&mut active_reader).get("ok").and_then(Json::as_bool),
        Some(true)
    );

    // …a silent one is told why it is being closed, then disconnected
    let (silent, mut silent_reader) = connect(&addr);
    let response = recv(&mut silent_reader);
    assert_eq!(code_of(&response).as_deref(), Some("idle-timeout"));
    let mut rest = String::new();
    silent_reader.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty(), "idle connection must be closed after the notice");
    drop(silent);
    drop(active);

    shutdown(&addr, server_thread);
}

#[test]
fn connection_cap_rejects_excess_clients_with_overloaded() {
    let server = Server::bind(bare_platform(), "127.0.0.1:0")
        .unwrap()
        .max_conns(2)
        .idle_timeout(None);
    let (addr, server_thread) = spawn(server);

    let (mut keep, mut keep_reader) = connect(&addr);
    send(&mut keep, "{\"op\":\"status\"}"); // ensure it is accepted + served
    recv(&mut keep_reader);
    let (_second, _second_reader) = connect(&addr);
    // give the loop a tick to register the second connection
    thread::sleep(Duration::from_millis(20));

    let (excess, mut excess_reader) = connect(&addr);
    let response = recv(&mut excess_reader);
    assert_eq!(code_of(&response).as_deref(), Some("overloaded"));
    let mut rest = String::new();
    excess_reader.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty(), "rejected connection must be closed");
    drop(excess);
    drop((_second, _second_reader));
    thread::sleep(Duration::from_millis(20)); // let the reap free a slot

    shutdown(&addr, server_thread);
}

/// The admission-control conservation property: under shed-inducing load,
/// **every** request still gets exactly one response, matched by its
/// echoed `id`, and every response is either a success or a stable
/// `overloaded` shed — nothing is silently dropped, nothing is answered
/// twice.
#[test]
fn shedding_never_drops_or_duplicates_a_response() {
    let server = Server::bind(bare_platform(), "127.0.0.1:0")
        .unwrap()
        .queue_depth(1)
        .idle_timeout(None);
    let (addr, server_thread) = spawn(server);
    let (mut stream, mut reader) = connect(&addr);

    // one write carrying 41 requests: the first is admitted, the rest
    // arrive while it occupies the whole queue (depth 1)
    const BURST: u64 = 41;
    let burst: String = (0..BURST)
        .map(|i| format!("{{\"id\":{i},\"op\":\"status\"}}\n"))
        .collect();
    stream.write_all(burst.as_bytes()).unwrap();

    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut seen = std::collections::HashSet::new();
    for _ in 0..BURST {
        let response = recv(&mut reader);
        let id = response
            .get("id")
            .and_then(Json::as_u64)
            .expect("every response must echo its request id");
        assert!(seen.insert(id), "id {id} answered twice");
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => ok += 1,
            Some(false) => {
                assert_eq!(
                    code_of(&response).as_deref(),
                    Some("overloaded"),
                    "only sheds may fail under this burst"
                );
                shed += 1;
            }
            None => panic!("response without ok member"),
        }
    }
    assert_eq!(ok + shed, BURST, "exactly one response per request");
    assert_eq!(seen.len() as u64, BURST, "every id answered exactly once");
    assert!(ok >= 1, "the admitted request must be answered");
    assert!(shed >= 30, "a depth-1 queue must shed most of the burst");

    // the server recovers: the next request is admitted normally
    send(&mut stream, "{\"id\":\"after\",\"op\":\"status\"}");
    let response = recv(&mut reader);
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(response.get("id").and_then(Json::as_str), Some("after"));

    shutdown(&addr, server_thread);
}
