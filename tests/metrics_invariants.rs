//! Property tests for the observability counters: structural invariants
//! that must hold on *randomised* workloads, at every worker count.
//!
//! The central one is conservation through the pattern cache: every
//! evaluation unit of the cached strategies requests exactly its rule's
//! source and target table, so
//!
//! ```text
//! prov.cache.hits + prov.cache.misses == 2 × units dispatched
//! prov.cache.misses                  == xpath.pattern.evals
//! ```
//!
//! and, because the cache's `OnceLock` protocol evaluates each distinct
//! `(pattern, state)` key at most once regardless of scheduling, the whole
//! counter snapshot (modulo the deliberately parallelism-dependent
//! worker-pool counter) is identical at 1, 2 and 4 workers.
//!
//! This extends the coverage of `tests/parallel_equivalence.rs` (same
//! workload generator, same sweep) but lives in its own test binary:
//! `weblab_obs` metrics are process-global, and the other binary's tests
//! run concurrently within their process. Tests here serialise on a mutex.

use std::collections::BTreeMap;
use std::sync::Mutex;

use proptest::prelude::*;

use weblab::obs;
use weblab::prov::{
    infer_provenance, EngineOptions, Parallelism, Strategy as ProvStrategy,
};
use weblab::workflow::generator::synthetic_workload;
use weblab::workflow::Orchestrator;

static SERIAL: Mutex<()> = Mutex::new(());

/// Counter snapshot of one inference run, minus zero-valued registrations
/// left over from earlier tests and the parallelism-dependent pool size.
fn run_counters(
    doc: &weblab::xml::Document,
    trace: &weblab::prov::ExecutionTrace,
    rules: &weblab::prov::RuleSet,
    strategy: ProvStrategy,
    parallelism: Parallelism,
) -> BTreeMap<String, u64> {
    obs::reset();
    obs::enable();
    let _ = infer_provenance(
        doc,
        trace,
        rules,
        &EngineOptions {
            strategy,
            parallelism,
            ..Default::default()
        },
    );
    let snap = obs::snapshot();
    obs::disable();
    let mut counters = snap.counters;
    counters.retain(|k, v| *v != 0 && k != "prov.executor.workers.spawned");
    counters
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cache_conservation_and_worker_invariance(
        seed in 0u64..1000,
        n_calls in 1usize..6,
        fanout in 1usize..4,
    ) {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let (mut doc, wf, rules) = synthetic_workload(seed, n_calls, fanout, 0);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();

        for (strategy, unit_counter) in [
            (ProvStrategy::StateReplay { materialize: false }, "prov.engine.replay.units"),
            (ProvStrategy::TemporalRewrite, "prov.engine.temporal.units"),
            (ProvStrategy::GroupedSinglePass, "prov.engine.grouped.units"),
        ] {
            let base = run_counters(
                &doc, &outcome.trace, &rules, strategy, Parallelism::Sequential,
            );
            let units = base.get(unit_counter).copied().unwrap_or(0);
            let hits = base.get("prov.cache.hits").copied().unwrap_or(0);
            let misses = base.get("prov.cache.misses").copied().unwrap_or(0);
            let evals = base.get("xpath.pattern.evals").copied().unwrap_or(0);

            // every unit requests exactly two tables from the cache
            prop_assert_eq!(hits + misses, 2 * units, "strategy {:?}", strategy);
            // a miss is exactly one pattern evaluation (these strategies
            // route every evaluation through the cache)
            prop_assert_eq!(misses, evals, "strategy {:?}", strategy);

            // the counter snapshot is worker-count-invariant
            for workers in [Parallelism::Threads(2), Parallelism::Threads(4)] {
                let got = run_counters(&doc, &outcome.trace, &rules, strategy, workers);
                prop_assert_eq!(&base, &got, "strategy {:?}, workers {:?}", strategy, workers);
            }
        }
    }

    #[test]
    fn inflight_gauges_settle_to_zero(
        seed in 0u64..1000,
        n_calls in 1usize..5,
    ) {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let (mut doc, wf, rules) = synthetic_workload(seed, n_calls, 2, 0);
        obs::reset();
        obs::enable();
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let _ = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions {
            parallelism: Parallelism::Threads(4),
            ..Default::default()
        });
        let snap = obs::snapshot();
        obs::disable();
        for (name, v) in &snap.gauges {
            prop_assert_eq!(*v, 0, "gauge {} leaked", name);
        }
        // the orchestrator counted each service call exactly once
        prop_assert_eq!(snap.counter("workflow.calls"), outcome.trace.len() as u64);
        prop_assert_eq!(snap.counter("workflow.errors"), 0);
    }
}
