//! Invariance guarantees of the ranked analytics layer (DESIGN.md §15).
//!
//! Two properties are pinned here, both promised by the v2 protocol:
//!
//! 1. **Worker-count invariance** — the served `rank` and `summary`
//!    responses are *byte-identical* at 1, 2 and 4 dispatch workers, and
//!    the ranked entry list is identical whether the index was built
//!    incrementally (live ingestion) or in one batch pass. Scores depend
//!    only on the published graph, never on traversal or intern order.
//! 2. **Exactness at unbounded budget** — on random synthetic workloads,
//!    an unbounded `rank` visits exactly the impacted-by closure (up) /
//!    the lineage closure (down) of its seed: the budgeted frontier is a
//!    refinement of the exact queries, not a different relation.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;

use proptest::prelude::*;

use weblab::json::Json;
use weblab::platform::{Mapper, Platform, QueryOpts, RankDirection};
use weblab::prov::{infer_provenance, rank, EngineOptions, ReachabilityIndex};
use weblab::serve::Server;
use weblab::workflow::generator::{generate_corpus, synthetic_workload};
use weblab::workflow::services::{self, LanguageExtractor, Normaliser, Tokeniser};
use weblab::workflow::{Orchestrator, Service};

const PIPELINE: [&str; 3] = ["Normaliser", "LanguageExtractor", "Tokeniser"];

fn serve_platform() -> Arc<Platform> {
    let rules = services::default_rules();
    let platform = Platform::new(Mapper::native());
    let builtins: Vec<Box<dyn Service>> = vec![
        Box::new(Normaliser),
        Box::new(LanguageExtractor),
        Box::new(Tokeniser),
    ];
    for svc in builtins {
        let texts: Vec<String> = rules
            .rules_for(svc.name())
            .iter()
            .map(|r| r.to_string())
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        platform.register_service(Arc::from(svc), &refs).unwrap();
    }
    Arc::new(platform)
}

/// Build an execution (live-maintained or batch-materialised), serve it,
/// and capture the raw wire bytes of one `rank` and one `summary`
/// response.
fn served_rank_bytes(live: bool, workers: usize) -> (String, String) {
    let platform = serve_platform();
    {
        let exec = platform.execution("e");
        exec.ingest(generate_corpus(31, 2, 12));
        if live {
            exec.enable_live();
        }
        exec.execute(&PIPELINE).unwrap();
    }
    let seeds: Vec<String> = {
        let snap = platform.execution("e").snapshot().unwrap();
        let mut uris: Vec<String> = snap.graph.sources.iter().map(|s| s.uri.clone()).collect();
        uris.sort();
        uris.truncate(2);
        uris
    };
    assert_eq!(seeds.len(), 2, "corpus produced too few resources");

    let server = Server::bind(Arc::clone(&platform), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = thread::spawn(move || server.run(workers));

    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    let mut roundtrip = |line: &str| -> String {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    };
    let rank_req = Json::obj(vec![
        ("op", Json::str("rank")),
        ("exec", Json::str("e")),
        (
            "uris",
            Json::Arr(seeds.iter().map(|u| Json::str(u.as_str())).collect()),
        ),
        ("direction", Json::str("up")),
        ("budget", Json::num(16)),
        ("limit", Json::num(10)),
        ("decay", Json::Num(0.25)),
        (
            "weights",
            Json::Obj(vec![("Normaliser".to_string(), Json::Num(0.5))]),
        ),
    ])
    .to_string();
    let summary_req = Json::obj(vec![
        ("op", Json::str("summary")),
        ("exec", Json::str("e")),
        ("uri", Json::str(seeds[0].as_str())),
    ])
    .to_string();
    let rank_response = roundtrip(&rank_req);
    let summary_response = roundtrip(&summary_req);
    let shutdown = Json::obj(vec![("op", Json::str("shutdown"))]).to_string();
    let _ = roundtrip(&shutdown);
    let _ = server_thread.join();
    (rank_response, summary_response)
}

/// The `result` member of a serve response — the part that must agree
/// between live and batch builds (the `epoch` stamp legitimately differs:
/// live publishes one epoch per committed call).
fn result_of(response: &str) -> String {
    let parsed = Json::parse(response).unwrap();
    assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true), "{response}");
    assert_eq!(
        parsed.get("v").and_then(Json::as_u64),
        Some(2),
        "response must carry the v2 protocol stamp: {response}"
    );
    parsed.get("result").unwrap().to_string()
}

#[test]
fn ranked_responses_are_byte_identical_across_worker_counts() {
    for live in [false, true] {
        let (rank1, summary1) = served_rank_bytes(live, 1);
        for workers in [2usize, 4] {
            let (rank_n, summary_n) = served_rank_bytes(live, workers);
            assert_eq!(rank1, rank_n, "rank bytes diverged at {workers} workers (live={live})");
            assert_eq!(
                summary1, summary_n,
                "summary bytes diverged at {workers} workers (live={live})"
            );
        }
    }
}

#[test]
fn ranked_results_agree_between_live_and_batch_builds() {
    let (rank_batch, summary_batch) = served_rank_bytes(false, 2);
    let (rank_live, summary_live) = served_rank_bytes(true, 2);
    assert_eq!(result_of(&rank_batch), result_of(&rank_live));
    assert_eq!(result_of(&summary_batch), result_of(&summary_live));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With no budget, the visited set of a rank query is *exactly* the
    /// impacted-by closure (up) / lineage closure (down) of its seed, and
    /// the entries come out sorted best-first.
    #[test]
    fn unbounded_rank_pins_the_exact_closures(
        seed in 0u64..1000,
        n_calls in 1usize..6,
        fanout in 1usize..4,
    ) {
        let (mut doc, wf, rules) = synthetic_workload(seed, n_calls, fanout, 0);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let graph = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions::default());
        let index = ReachabilityIndex::from_graph(&graph);
        let opts = QueryOpts::default();
        let uris: Vec<String> = graph.sources.iter().map(|s| s.uri.clone()).take(6).collect();
        for uri in &uris {
            let seeds = [uri.clone()];

            let up = rank(&index, &seeds, RankDirection::Up, &opts, &[]);
            let mut expect: Vec<String> = index.impacted_by(uri);
            expect.push(uri.clone());
            expect.sort();
            expect.dedup();
            let mut got: Vec<String> = up.iter().map(|e| e.uri.clone()).collect();
            got.sort();
            prop_assert_eq!(&got, &expect, "up closure of {}", uri);

            let down = rank(&index, &seeds, RankDirection::Down, &opts, &[]);
            let mut expect: Vec<String> = index
                .lineage(uri, usize::MAX)
                .into_iter()
                .map(|(u, _)| u)
                .collect();
            expect.sort();
            expect.dedup();
            let mut got: Vec<String> = down.iter().map(|e| e.uri.clone()).collect();
            got.sort();
            prop_assert_eq!(&got, &expect, "down closure of {}", uri);

            // best-first: score descending, then hop, then uri
            for pair in up.windows(2) {
                let key = |e: &weblab::prov::RankedEntry| {
                    (std::cmp::Reverse(e.score_micro), e.hop, e.uri.clone())
                };
                prop_assert!(key(&pair[0]) <= key(&pair[1]));
            }
        }
    }

    /// A budgeted rank never invents resources: every entry it returns is
    /// in the unbounded closure, and the seed always survives the trim.
    #[test]
    fn budgeted_rank_is_a_refinement_of_the_closure(
        seed in 0u64..1000,
        n_calls in 1usize..6,
        fanout in 1usize..4,
        budget in 1usize..8,
    ) {
        let (mut doc, wf, rules) = synthetic_workload(seed, n_calls, fanout, 0);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let graph = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions::default());
        let index = ReachabilityIndex::from_graph(&graph);
        let Some(first) = graph.sources.first() else {
            return;
        };
        let uri = first.uri.clone();
        let seeds = [uri.clone()];
        let bounded = rank(
            &index,
            &seeds,
            RankDirection::Up,
            &QueryOpts { limit: 0, budget, decay_micro: 0 },
            &[],
        );
        let full: std::collections::HashSet<String> = rank(
            &index,
            &seeds,
            RankDirection::Up,
            &QueryOpts::default(),
            &[],
        )
        .into_iter()
        .map(|e| e.uri)
        .collect();
        prop_assert!(bounded.len() <= budget.max(1));
        prop_assert!(bounded.iter().any(|e| e.uri == uri), "seed must survive the trim");
        for e in &bounded {
            prop_assert!(full.contains(&e.uri), "{} not in the unbounded closure", e.uri);
        }
    }
}
