//! Golden counter tests: the paper's running example (Figure 1/3/4) must
//! produce *exactly* the same metrics snapshot on every run, at every
//! worker count.
//!
//! The determinism argument: the pattern cache's `OnceLock` protocol
//! evaluates each distinct `(pattern, state)` key at most once regardless
//! of scheduling, so misses (= actual evaluations, and with them every
//! per-evaluation counter: nodes visited, predicate evaluations, index
//! lookups) depend only on the key set — not on thread interleaving.
//!
//! These tests live in their own integration-test binary (rather than
//! extending `tests/parallel_equivalence.rs` directly, as first sketched)
//! because `weblab_obs` metrics are process-global: any concurrently
//! running test that exercises the engine would pollute the counters.
//! Separate test binaries are separate processes; within this binary the
//! tests serialise on a mutex.

use std::collections::BTreeMap;
use std::sync::Mutex;

use weblab::obs;
use weblab::prov::{
    infer_provenance, paper_example, EngineOptions, Parallelism, Strategy,
};

static SERIAL: Mutex<()> = Mutex::new(());

/// Run one inference of the paper example with collection on, returning
/// the counter section of the snapshot.
fn counters_for(strategy: Strategy, parallelism: Parallelism) -> BTreeMap<String, u64> {
    obs::reset();
    obs::enable();
    let (doc, trace, rules) = paper_example::build();
    let g = infer_provenance(
        &doc,
        &trace,
        &rules,
        &EngineOptions {
            strategy,
            parallelism,
            ..Default::default()
        },
    );
    assert!(!g.links.is_empty());
    let snap = obs::snapshot();
    obs::disable();
    // `obs::reset` zeroes values but keeps registrations, so a counter
    // touched by an earlier test in this process still appears (at 0) in
    // later snapshots. Compare only what this run actually counted. The
    // worker-pool size counter is parallelism-dependent *by design* and is
    // excluded from the worker-count-invariant golden set.
    let mut counters = snap.counters;
    counters.retain(|k, v| *v != 0 && k != "prov.executor.workers.spawned");
    counters
}

fn expect(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
    pairs
        .iter()
        .map(|&(k, v)| (k.to_string(), v))
        .collect()
}

#[test]
fn temporal_rewrite_golden_counters() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // 3 calls × 1 rule each = 3 units; each unit requests its rule's source
    // and target pattern (6 requests over 6 distinct patterns on the final
    // state), so every request is a miss and hits + misses == 2 × units.
    let expected = expect(&[
        ("prov.cache.misses", 6),
        ("prov.engine.links.derived", 3),
        ("prov.engine.links.emitted", 3),
        ("prov.engine.temporal.units", 3),
        ("prov.trace.channel_map.builds", 1),
        ("xpath.eval.nodes_visited", 34),
        ("xpath.eval.predicate_evals", 8),
        ("xpath.index.builds", 1),
        ("xpath.index.lookups", 5),
        ("xpath.pattern.evals", 6),
    ]);
    for workers in [
        Parallelism::Sequential,
        Parallelism::Threads(2),
        Parallelism::Threads(4),
    ] {
        let got = counters_for(Strategy::TemporalRewrite, workers);
        assert_eq!(got, expected, "workers = {workers:?}");
    }
}

#[test]
fn grouped_single_pass_golden_counters() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let expected = expect(&[
        ("prov.cache.misses", 6),
        ("prov.engine.links.derived", 3),
        ("prov.engine.links.emitted", 3),
        ("prov.engine.grouped.units", 3),
        ("prov.trace.channel_map.builds", 1),
        ("xpath.eval.nodes_visited", 34),
        ("xpath.eval.predicate_evals", 8),
        ("xpath.index.builds", 1),
        ("xpath.index.lookups", 5),
        ("xpath.pattern.evals", 6),
    ]);
    for workers in [
        Parallelism::Sequential,
        Parallelism::Threads(2),
        Parallelism::Threads(4),
    ] {
        let got = counters_for(Strategy::GroupedSinglePass, workers);
        assert_eq!(got, expected, "workers = {workers:?}");
    }
}

#[test]
fn state_replay_golden_counters() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Replay evaluates each rule's source on the call's input state and its
    // target on the output state: all 6 (pattern, state) keys are distinct,
    // and the earlier states are smaller, so fewer nodes are visited than
    // on the final state.
    let expected = expect(&[
        ("prov.cache.misses", 6),
        ("prov.engine.links.derived", 3),
        ("prov.engine.links.emitted", 3),
        ("prov.engine.replay.units", 3),
        ("prov.trace.channel_map.builds", 1),
        ("xpath.eval.nodes_visited", 13),
        ("xpath.eval.predicate_evals", 5),
        ("xpath.index.builds", 1),
        ("xpath.index.lookups", 5),
        ("xpath.pattern.evals", 6),
    ]);
    for workers in [
        Parallelism::Sequential,
        Parallelism::Threads(2),
        Parallelism::Threads(4),
    ] {
        let got = counters_for(Strategy::StateReplay { materialize: false }, workers);
        assert_eq!(got, expected, "workers = {workers:?}");
    }
}

#[test]
fn executor_histogram_counts_units_and_balances_inflight() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::enable();
    let (doc, trace, rules) = paper_example::build();
    for parallelism in [Parallelism::Sequential, Parallelism::Threads(4)] {
        let _ = infer_provenance(
            &doc,
            &trace,
            &rules,
            &EngineOptions {
                parallelism,
                ..Default::default()
            },
        );
    }
    let snap = obs::snapshot();
    obs::disable();
    let h = snap
        .histogram("prov.executor.unit.duration_ns")
        .expect("unit histogram registered");
    assert_eq!(h.count, 6, "3 units per run × 2 runs");
    assert!(h.sum > 0);
    assert_eq!(snap.gauge("prov.executor.units.inflight"), 0);
}

#[test]
fn metrics_opt_out_suppresses_engine_counters() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::enable();
    let (doc, trace, rules) = paper_example::build();
    let _ = infer_provenance(
        &doc,
        &trace,
        &rules,
        &EngineOptions {
            metrics: false,
            ..Default::default()
        },
    );
    let snap = obs::snapshot();
    obs::disable();
    // engine-level counters respect the per-run gate…
    assert_eq!(snap.counter("prov.engine.temporal.units"), 0);
    assert_eq!(snap.counter("prov.engine.links.emitted"), 0);
    // …while globally gated evaluation counters still tick
    assert_eq!(snap.counter("xpath.pattern.evals"), 6);
}

#[test]
fn disabled_collection_records_nothing() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    assert!(!obs::enabled());
    let (doc, trace, rules) = paper_example::build();
    let _ = infer_provenance(&doc, &trace, &rules, &EngineOptions::default());
    let snap = obs::snapshot();
    assert_eq!(snap.counter("xpath.pattern.evals"), 0);
    assert_eq!(snap.counter("prov.cache.misses"), 0);
}
