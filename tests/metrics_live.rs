//! Perf guard for live provenance maintenance, verified through the
//! deterministic `weblab_obs` counters (own test binary: the metrics
//! registry is process-global, so these tests must not share a process
//! with other engine work; within the binary they serialise on a mutex).
//!
//! The property under guard: a live maintainer keeps its channel map
//! *incrementally* (extending it with each committed call's productions)
//! and therefore performs **zero** full `ExecutionTrace::channel_map`
//! builds over an entire execution — while batch inference builds it once,
//! and the naive alternative (re-invoking `infer_links_since` per call)
//! builds it once *per delta*, degrading live runs to O(n²).

use std::sync::{Arc, Mutex as StdMutex};

use weblab::obs;
use weblab::prov::{infer_links_since, infer_provenance, EngineOptions, LiveProvenance};
use weblab::workflow::generator::synthetic_workload;
use weblab::workflow::Orchestrator;

static SERIAL: StdMutex<()> = StdMutex::new(());

const BUILDS: &str = "prov.trace.channel_map.builds";

#[test]
fn live_run_performs_no_full_channel_map_builds() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (mut doc, wf, rules) = synthetic_workload(9, 6, 3, 0);
    obs::reset();
    obs::enable();
    let maintainer = Arc::new(StdMutex::new(LiveProvenance::new(
        rules,
        EngineOptions::default(),
    )));
    let hook = Arc::clone(&maintainer);
    let orch = Orchestrator::new().with_call_hook(Arc::new(move |d, t, i| {
        hook.lock().unwrap().observe_call(d, t, i);
    }));
    let outcome = orch.execute(&wf, &mut doc).unwrap();
    let snap = obs::snapshot();
    obs::disable();

    let lp = maintainer.lock().unwrap();
    assert_eq!(lp.calls_seen(), outcome.trace.len());
    assert!(lp.link_count() > 0);
    // the incremental channel map made every delta O(delta): not a single
    // full rebuild across the whole execution
    assert_eq!(snap.counter(BUILDS), 0, "live maintenance rebuilt the channel map");
    assert_eq!(snap.counter("live.deltas"), outcome.trace.len() as u64);
    assert_eq!(snap.counter("live.links"), lp.link_count() as u64);
}

#[test]
fn batch_builds_once_while_naive_per_delta_loops_build_per_call() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (mut doc, wf, rules) = synthetic_workload(9, 6, 3, 0);
    let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
    let opts = EngineOptions::default();
    let n = outcome.trace.len();

    obs::reset();
    obs::enable();
    let _ = infer_provenance(&doc, &outcome.trace, &rules, &opts);
    let batch_builds = obs::snapshot().counter(BUILDS);

    obs::reset();
    // the naive live loop this feature replaces: one full inference entry
    // point per committed call
    for k in 0..n {
        let _ = infer_links_since(&doc, &outcome.trace, k, &rules, &opts);
    }
    let naive_builds = obs::snapshot().counter(BUILDS);
    obs::disable();

    assert_eq!(batch_builds, 1, "batch inference builds the map exactly once");
    assert_eq!(
        naive_builds, n as u64,
        "per-call re-inference pays one full build per delta"
    );
}
