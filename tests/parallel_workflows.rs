//! Tests for the Section 8 extension: parallel (and nested) workflow
//! executions with control-flow channels.
//!
//! Semantics under test: branches of a parallel block run on forks of the
//! document taken at block entry, so sibling branches are mutually
//! invisible — both during execution (a service in branch 1 cannot read
//! branch 0's output) and during provenance inference (a call in branch 1
//! cannot *depend* on branch 0's output, even though its timestamp is
//! later). Calls after the join see everything.

use weblab::prov::{
    channels_compatible, infer_provenance, EngineOptions, RuleSet, Strategy,
};
use weblab::workflow::{CallContext, Orchestrator, Service, Workflow, WorkflowError};
use weblab::xml::Document;
use weblab::xquery::{infer_provenance_xquery, XQueryStrategyOptions};

/// Appends one `Item` with a given tag value.
struct Producer(&'static str);

impl Service for Producer {
    fn name(&self) -> &str {
        "Producer"
    }
    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let root = doc.root();
        let n = doc.append_element(root, "Item")?;
        doc.set_attr(n, "tag", self.0)?;
        let uri = ctx.register(doc, n)?;
        doc.set_attr(n, "key", uri)?;
        Ok(())
    }
}

/// Appends a `Marker`; its rule says a marker depends on *every* item
/// (no join variable — a cartesian rule), which makes channel filtering
/// observable.
struct Marker;

impl Service for Marker {
    fn name(&self) -> &str {
        "Marker"
    }
    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let root = doc.root();
        let n = doc.append_element(root, "Marker")?;
        ctx.register(doc, n)?;
        Ok(())
    }
}

/// Counts `Item` elements visible to the service and stores the count.
struct Counter;

impl Service for Counter {
    fn name(&self) -> &str {
        "Counter"
    }
    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let root = doc.root();
        let count = {
            let v = doc.view();
            v.descendants(root)
                .filter(|&n| v.name(n) == Some("Item"))
                .count()
        };
        let n = doc.append_element(root, "Count")?;
        doc.set_attr(n, "items", count.to_string())?;
        ctx.register(doc, n)?;
        Ok(())
    }
}

fn marker_rules() -> RuleSet {
    let mut rules = RuleSet::new();
    rules.add_parsed("Marker", "//Item => //Marker").unwrap();
    rules.add_parsed("Counter", "//Item => //Count").unwrap();
    rules
}

#[test]
fn sibling_branches_cannot_see_each_other_during_execution() {
    // pre-fork: one item; branch 0 adds an item; branch 1 counts items.
    let mut doc = Document::new("Resource");
    doc.register_resource(doc.root(), "root", None).unwrap();
    let wf = Workflow::new()
        .then(Producer("pre"))
        .then_parallel(vec![
            Workflow::new().then(Producer("branch0")),
            Workflow::new().then(Counter),
        ])
        .then(Counter);
    let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();

    // branch 1's Counter saw only the pre-fork item
    let v = doc.view();
    let counts: Vec<&str> = v
        .descendants(doc.root())
        .filter(|&n| v.name(n) == Some("Count"))
        .filter_map(|n| v.attr(n, "items"))
        .collect();
    assert_eq!(counts, vec!["1", "2"]); // in-branch count, post-join count

    // channels recorded correctly
    let channels: Vec<&str> = outcome.trace.calls.iter().map(|c| c.channel.as_str()).collect();
    assert_eq!(channels, vec!["", "0", "1", ""]);
    assert!(outcome.trace.has_parallel_channels());
}

#[test]
fn merge_preserves_structure_resources_and_marks() {
    let mut doc = Document::new("Resource");
    doc.register_resource(doc.root(), "root", None).unwrap();
    let wf = Workflow::new().then_parallel(vec![
        Workflow::new().then(Producer("a")).then(Producer("a2")),
        Workflow::new().then(Producer("b")),
    ]);
    let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
    assert_eq!(outcome.trace.len(), 3);

    // all three items ended up in the main document, with resources
    let v = doc.view();
    let tags: Vec<&str> = v
        .descendants(doc.root())
        .filter(|&n| v.name(n) == Some("Item"))
        .filter_map(|n| v.attr(n, "tag"))
        .collect();
    assert_eq!(tags, vec!["a", "a2", "b"]);
    assert_eq!(doc.resource_nodes().len(), 4); // root + 3 items

    // per-call marks in the merged arena segment the produced nodes
    for call in &outcome.trace.calls {
        assert_eq!(call.produced.len(), 1);
        let n = call.produced[0];
        assert!(n.index() >= call.input.node_count());
        assert!(n.index() < call.output.node_count());
        // and labels survived the merge
        assert_eq!(
            doc.view().label(n).map(|l| l.time),
            Some(call.time)
        );
    }
}

#[test]
fn provenance_respects_channel_visibility() {
    // branch 0: Producer; branch 1: Marker (cartesian rule //Item => //Marker)
    let mut doc = Document::new("Resource");
    doc.register_resource(doc.root(), "root", None).unwrap();
    let wf = Workflow::new()
        .then(Producer("pre"))
        .then_parallel(vec![
            Workflow::new().then(Producer("sibling")),
            Workflow::new().then(Marker),
        ]);
    let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
    let g = infer_provenance(&doc, &outcome.trace, &marker_rules(), &EngineOptions::default());

    // the marker depends on the pre-fork item but NOT on the sibling's,
    // although the sibling's timestamp (t2) is before the marker's (t3)
    let marker_deps: Vec<&str> = g
        .links
        .iter()
        .filter(|l| l.from_uri.contains("Marker"))
        .map(|l| l.to_uri.as_str())
        .collect();
    assert_eq!(marker_deps.len(), 1);
    assert!(marker_deps[0].contains("Producer-t1")); // the pre-fork item
    let sibling_time = outcome.trace.calls[1].time;
    let marker_time = outcome.trace.calls[2].time;
    assert!(sibling_time < marker_time, "sibling ran first in wall order");
}

#[test]
fn post_join_calls_see_all_branches() {
    let mut doc = Document::new("Resource");
    doc.register_resource(doc.root(), "root", None).unwrap();
    let wf = Workflow::new()
        .then_parallel(vec![
            Workflow::new().then(Producer("a")),
            Workflow::new().then(Producer("b")),
        ])
        .then(Marker);
    let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
    let g = infer_provenance(&doc, &outcome.trace, &marker_rules(), &EngineOptions::default());
    let marker_deps = g
        .links
        .iter()
        .filter(|l| l.from_uri.contains("Marker"))
        .count();
    assert_eq!(marker_deps, 2); // both branch outputs visible after the join
}

#[test]
fn nested_parallel_channels() {
    let mut doc = Document::new("Resource");
    doc.register_resource(doc.root(), "root", None).unwrap();
    let inner = Workflow::new().then_parallel(vec![
        Workflow::new().then(Producer("x")),
        Workflow::new().then(Producer("y")),
    ]);
    let wf = Workflow::new().then_parallel(vec![inner, Workflow::new().then(Marker)]);
    let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
    let channels: Vec<&str> = outcome.trace.calls.iter().map(|c| c.channel.as_str()).collect();
    assert_eq!(channels, vec!["0.0", "0.1", "1"]);
    assert!(channels_compatible("0.0", "0"));
    assert!(!channels_compatible("0.0", "0.1"));
    // the marker (channel 1) sees nothing from channel 0.* → no links
    let g = infer_provenance(&doc, &outcome.trace, &marker_rules(), &EngineOptions::default());
    assert!(g.links.is_empty());
}

#[test]
fn all_strategies_agree_on_parallel_traces() {
    let mut results = Vec::new();
    for strategy in [
        Strategy::StateReplay { materialize: false },
        Strategy::StateReplay { materialize: true },
        Strategy::TemporalRewrite,
        Strategy::GroupedSinglePass,
    ] {
        let mut doc = Document::new("Resource");
        doc.register_resource(doc.root(), "root", None).unwrap();
        let wf = Workflow::new()
            .then(Producer("pre"))
            .then_parallel(vec![
                Workflow::new().then(Producer("a")).then(Marker),
                Workflow::new().then(Producer("b")),
            ])
            .then(Marker);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let g = infer_provenance(
            &doc,
            &outcome.trace,
            &marker_rules(),
            &EngineOptions {
                strategy,
                ..Default::default()
            },
        );
        let pairs: Vec<(String, String)> = g
            .links
            .iter()
            .map(|l| (l.from_uri.clone(), l.to_uri.clone()))
            .collect();
        results.push(pairs);
    }
    // compiled XQuery path agrees as well
    {
        let mut doc = Document::new("Resource");
        doc.register_resource(doc.root(), "root", None).unwrap();
        let wf = Workflow::new()
            .then(Producer("pre"))
            .then_parallel(vec![
                Workflow::new().then(Producer("a")).then(Marker),
                Workflow::new().then(Producer("b")),
            ])
            .then(Marker);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let g = infer_provenance_xquery(
            &doc,
            &outcome.trace,
            &marker_rules(),
            &XQueryStrategyOptions::default(),
        )
        .unwrap();
        results.push(
            g.links
                .iter()
                .map(|l| (l.from_uri.clone(), l.to_uri.clone()))
                .collect(),
        );
    }
    for r in &results[1..] {
        assert_eq!(&results[0], r);
    }
    assert!(!results[0].is_empty());
}

#[test]
fn eager_mode_works_inside_branches() {
    let mut doc = Document::new("Resource");
    doc.register_resource(doc.root(), "root", None).unwrap();
    let wf = Workflow::new()
        .then(Producer("pre"))
        .then_parallel(vec![
            Workflow::new().then(Marker),
            Workflow::new().then(Producer("b")),
        ]);
    let outcome = Orchestrator::eager(marker_rules())
        .execute(&wf, &mut doc)
        .unwrap();
    let posthoc = infer_provenance(
        &doc,
        &outcome.trace,
        &marker_rules(),
        &EngineOptions::default(),
    );
    assert_eq!(outcome.eager_links, posthoc.links);
    assert_eq!(outcome.eager_links.len(), 1); // marker → pre-fork item
}
