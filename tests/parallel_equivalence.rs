//! Property tests for the parallel inference executor: at every worker
//! count, every strategy and every inheritance mode, the parallel engine
//! must produce the exact link set of the sequential reference — the
//! executor merges per-unit buffers in unit order and the engine sorts and
//! dedups, so the whole `ProvenanceGraph` is byte-identical.

use proptest::prelude::*;

use weblab::prov::{
    infer_provenance, EngineOptions, InheritMode, Parallelism, Strategy as ProvStrategy,
};
use weblab::workflow::generator::synthetic_workload;
use weblab::workflow::{Orchestrator, Workflow};
use weblab::workflow::services::{LanguageExtractor, Normaliser, Translator};

const WORKER_SWEEP: [Parallelism; 4] = [
    Parallelism::Threads(1),
    Parallelism::Threads(2),
    Parallelism::Threads(8),
    Parallelism::Auto,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_matches_sequential_on_random_workflows(
        seed in 0u64..1000,
        n_calls in 1usize..7,
        fanout in 1usize..4,
        inherit in proptest::bool::ANY,
    ) {
        let (mut doc, wf, rules) = synthetic_workload(seed, n_calls, fanout, 0);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let inherit = if inherit { InheritMode::PatternRewrite } else { InheritMode::Off };
        for strategy in [
            ProvStrategy::StateReplay { materialize: false },
            ProvStrategy::StateReplay { materialize: true },
            ProvStrategy::TemporalRewrite,
            ProvStrategy::GroupedSinglePass,
        ] {
            let sequential = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions {
                strategy,
                inherit,
                parallelism: Parallelism::Sequential,
                ..Default::default()
            });
            for parallelism in WORKER_SWEEP {
                let parallel = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions {
                    strategy,
                    inherit,
                    parallelism,
                    ..Default::default()
                });
                prop_assert_eq!(&sequential.links, &parallel.links);
                prop_assert_eq!(&sequential.sources, &parallel.sources);
            }
        }
    }
}

/// The media-mining pipeline exercises multi-service rule sets (several
/// units per call) and inherited provenance in one deterministic check.
#[test]
fn parallel_matches_sequential_on_media_pipeline() {
    let mut doc = weblab::workflow::generator::generate_corpus(7, 3, 25);
    let wf = Workflow::new()
        .then(Normaliser)
        .then(LanguageExtractor)
        .then(Translator::default())
        .then(LanguageExtractor);
    let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
    let rules = weblab::workflow::services::default_rules();
    for inherit in [InheritMode::Off, InheritMode::PatternRewrite, InheritMode::GraphPropagation] {
        for strategy in [
            ProvStrategy::TemporalRewrite,
            ProvStrategy::GroupedSinglePass,
            ProvStrategy::StateReplay { materialize: false },
        ] {
            let mk = |parallelism| {
                infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions {
                    strategy,
                    inherit,
                    parallelism,
                    ..Default::default()
                })
            };
            let sequential = mk(Parallelism::Sequential);
            assert!(!sequential.links.is_empty());
            for parallelism in WORKER_SWEEP {
                assert_eq!(sequential.links, mk(parallelism).links);
            }
        }
    }
}
