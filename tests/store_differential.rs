//! Differential tests for the disk-backed provenance store: an execution
//! that was written through to disk, evicted and cold-loaded must answer
//! every provenance query **byte-identically** to the resident path — the
//! same epoch in the response envelope, the same graph rows in the same
//! order — at every mapper worker count, in batch and live mode alike.
//! Protocol lines go through `serve::handle_line`, the exact dispatch the
//! daemon's workers run, so the comparison covers the full render path.
//!
//! A second group kills the integrity footer of each on-disk file kind
//! (segment, delta, snapshot) and asserts the corruption is *detected* —
//! a `store` error response — never silently served.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use weblab::json::Json;
use weblab::platform::{Mapper, Platform, ProvQuery, ProvStore, QueryOpts, RankDirection};
use weblab::prov::Parallelism;
use weblab::rdf::vocab::PROV_NS;
use weblab::serve::{handle_line, reference_response};
use weblab::workflow::generator::generate_corpus;
use weblab::workflow::services::{
    self, EntityExtractor, KeywordExtractor, LanguageExtractor, Normaliser, Summariser, Tokeniser,
};
use weblab::workflow::Service;

const PIPELINE: [&str; 6] = [
    "Normaliser",
    "LanguageExtractor",
    "Tokeniser",
    "EntityExtractor",
    "KeywordExtractor",
    "Summariser",
];

const WORKER_SWEEP: [Parallelism; 3] = [
    Parallelism::Threads(1),
    Parallelism::Threads(2),
    Parallelism::Threads(4),
];

fn tmpstore(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "weblab-store-diff-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A platform with the pipeline's services registered under their default
/// rules, inference at `jobs` worker threads — the serve registration path.
fn store_platform(jobs: Parallelism) -> Platform {
    let rules = services::default_rules();
    let platform = Platform::new(Mapper::native().with_parallelism(jobs));
    let builtins: Vec<Box<dyn Service>> = vec![
        Box::new(Normaliser),
        Box::new(LanguageExtractor),
        Box::new(Tokeniser),
        Box::new(EntityExtractor),
        Box::new(KeywordExtractor),
        Box::new(Summariser),
    ];
    for svc in builtins {
        let texts: Vec<String> = rules
            .rules_for(svc.name())
            .iter()
            .map(|r| r.to_string())
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        platform.register_service(Arc::from(svc), &refs).unwrap();
    }
    platform
}

/// The operand fields of a [`ProvQuery`] as request members.
fn query_fields(q: &ProvQuery) -> Vec<(&'static str, Json)> {
    match q {
        ProvQuery::Why { uri } | ProvQuery::ImpactedBy { uri } => {
            vec![("uri", Json::str(uri.as_str()))]
        }
        ProvQuery::Lineage { uri, depth } => vec![
            ("uri", Json::str(uri.as_str())),
            ("depth", Json::num(*depth as u64)),
        ],
        ProvQuery::CommonOrigins { a, b } => {
            vec![("a", Json::str(a.as_str())), ("b", Json::str(b.as_str()))]
        }
        ProvQuery::Sparql { query } => vec![("query", Json::str(query.as_str()))],
        ProvQuery::Rank { uris, direction, opts, weights } => {
            let mut pairs = vec![
                (
                    "uris",
                    Json::Arr(uris.iter().map(|u| Json::str(u.as_str())).collect()),
                ),
                ("direction", Json::str(direction.as_str())),
            ];
            if opts.limit != 0 {
                pairs.push(("limit", Json::num(opts.limit as u64)));
            }
            if opts.budget != 0 {
                pairs.push(("budget", Json::num(opts.budget as u64)));
            }
            if opts.decay_micro != 0 {
                pairs.push(("decay", Json::Num(f64::from(opts.decay_micro) / 1e6)));
            }
            if !weights.is_empty() {
                pairs.push((
                    "weights",
                    Json::Obj(
                        weights
                            .iter()
                            .map(|(s, w)| (s.clone(), Json::Num(f64::from(*w) / 1e6)))
                            .collect(),
                    ),
                ));
            }
            pairs
        }
        ProvQuery::Summary { uri } => match uri {
            Some(u) => vec![("uri", Json::str(u.as_str()))],
            None => vec![],
        },
    }
}

fn query_request(exec: &str, q: &ProvQuery) -> String {
    let mut pairs = vec![("op", Json::str(q.op())), ("exec", Json::str(exec))];
    pairs.extend(query_fields(q));
    Json::obj(pairs).to_string()
}

fn batch_request(exec: &str, queries: &[ProvQuery]) -> String {
    let subs: Vec<Json> = queries
        .iter()
        .map(|q| {
            let mut pairs = vec![("op", Json::str(q.op()))];
            pairs.extend(query_fields(q));
            Json::obj(pairs)
        })
        .collect();
    Json::obj(vec![
        ("op", Json::str("batch")),
        ("exec", Json::str(exec)),
        ("requests", Json::Arr(subs)),
    ])
    .to_string()
}

/// Every query op over the first links of a snapshot, plus one SPARQL.
fn query_suite(platform: &Platform, exec: &str) -> Vec<ProvQuery> {
    let snap = platform.execution(exec).snapshot().unwrap();
    let mut queries = vec![ProvQuery::Sparql {
        query: format!(
            "PREFIX prov: <{PROV_NS}> SELECT ?d ?s WHERE {{ ?d prov:wasDerivedFrom ?s . }}"
        ),
    }];
    for l in snap.graph.links.iter().take(8) {
        queries.push(ProvQuery::Why { uri: l.from_uri.clone() });
        queries.push(ProvQuery::Lineage { uri: l.from_uri.clone(), depth: 3 });
        queries.push(ProvQuery::ImpactedBy { uri: l.to_uri.clone() });
        queries.push(ProvQuery::CommonOrigins { a: l.from_uri.clone(), b: l.to_uri.clone() });
        queries.push(ProvQuery::Rank {
            uris: vec![l.to_uri.clone()],
            direction: RankDirection::Up,
            opts: QueryOpts { limit: 8, budget: 12, decay_micro: 250_000 },
            weights: Vec::new(),
        });
    }
    queries.push(ProvQuery::Summary { uri: None });
    queries
}

/// Serve the whole suite (singles + one batch) and return the raw lines.
fn serve_suite(platform: &Platform, exec: &str, queries: &[ProvQuery]) -> Vec<String> {
    let mut responses = Vec::new();
    for q in queries {
        let (response, stop) = handle_line(platform, &query_request(exec, q));
        assert!(!stop);
        responses.push(response);
    }
    let (batch, stop) = handle_line(platform, &batch_request(exec, queries));
    assert!(!stop);
    responses.push(batch);
    responses
}

#[test]
fn cold_loaded_answers_are_byte_identical_at_every_worker_count() {
    for (i, jobs) in WORKER_SWEEP.into_iter().enumerate() {
        for live in [false, true] {
            let dir = tmpstore(&format!("sweep-{i}-{live}"));
            let platform = store_platform(jobs);
            platform.attach_store(ProvStore::open(&dir).unwrap(), 8).unwrap();
            let exec = platform.execution("e");
            exec.ingest(generate_corpus(3, 2, 25));
            if live {
                exec.enable_live();
            }
            exec.execute(&PIPELINE).unwrap();

            let queries = query_suite(&platform, "e");
            assert!(queries.len() > 1, "suite needs links to query");
            let resident = serve_suite(&platform, "e", &queries);
            // the resident responses themselves match the reference render
            let snap = platform.execution("e").snapshot().unwrap();
            for (q, served) in queries.iter().zip(&resident) {
                assert_eq!(served, &reference_response(&snap, q).unwrap());
            }

            assert!(platform.execution("e").evict().unwrap());
            assert!(!platform.execution("e").is_resident());
            let cold = serve_suite(&platform, "e", &queries);
            assert_eq!(
                resident, cold,
                "cold-loaded responses diverged (jobs {i}, live {live})"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn a_restarted_platform_serves_the_same_bytes() {
    let dir = tmpstore("restart");
    let queries;
    let resident;
    {
        let platform = store_platform(Parallelism::Threads(2));
        platform.attach_store(ProvStore::open(&dir).unwrap(), 8).unwrap();
        let exec = platform.execution("exec/pr-8");
        exec.ingest(generate_corpus(4, 2, 30));
        exec.execute(&PIPELINE).unwrap();
        queries = query_suite(&platform, "exec/pr-8");
        resident = serve_suite(&platform, "exec/pr-8", &queries);
    }
    // fresh process state: a new platform over the same directory
    let platform = store_platform(Parallelism::Threads(2));
    platform.attach_store(ProvStore::open(&dir).unwrap(), 8).unwrap();
    let cold = serve_suite(&platform, "exec/pr-8", &queries);
    assert_eq!(resident, cold, "restart changed served bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_pressure_keeps_every_execution_answerable() {
    let dir = tmpstore("pressure");
    let platform = store_platform(Parallelism::Threads(2));
    platform.attach_store(ProvStore::open(&dir).unwrap(), 2).unwrap();
    let ids = ["a", "b", "c", "d", "e"];
    let mut expected = Vec::new();
    for id in ids {
        let exec = platform.execution(id);
        exec.ingest(generate_corpus(2, 1, 20));
        exec.execute(&["Normaliser", "LanguageExtractor"]).unwrap();
        let snap = exec.snapshot().unwrap();
        let why = ProvQuery::Why { uri: snap.graph.links[0].from_uri.clone() };
        let (served, _) = handle_line(&platform, &query_request(id, &why));
        expected.push((id, why, served));
    }
    // with max_resident = 2, most of the five executions are now on disk
    let resident: Vec<String> = ids
        .iter()
        .filter(|id| platform.execution(**id).is_resident())
        .map(|id| id.to_string())
        .collect();
    assert!(resident.len() <= 2, "LRU failed to bound residency: {resident:?}");
    // every execution — resident or evicted — still serves its exact bytes
    for (id, why, served) in &expected {
        let (again, _) = handle_line(&platform, &query_request(id, why));
        assert_eq!(&again, served, "execution {id} changed answers");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Store files of one kind under a store root (by suffix discipline:
/// `.seg-N`, `.delta`, `.snap-N`).
fn files_matching(root: &Path, pred: impl Fn(&str) -> bool) -> Vec<PathBuf> {
    let mut found = Vec::new();
    for shard in std::fs::read_dir(root).unwrap().flatten() {
        if !shard.path().is_dir() {
            continue;
        }
        for f in std::fs::read_dir(shard.path()).unwrap().flatten() {
            let name = f.file_name().to_string_lossy().into_owned();
            if pred(&name) {
                found.push(f.path());
            }
        }
    }
    found
}

/// Kill a file's integrity footer — the simulated torn write.
fn truncate_tail(path: &Path) {
    let text = std::fs::read_to_string(path).unwrap();
    let cut = text.rfind("# end").expect("file has an integrity footer");
    std::fs::write(path, &text[..cut]).unwrap();
}

#[test]
fn killed_footers_are_detected_not_served() {
    // one scenario per on-disk file kind with a footer
    type KindPred = fn(&str) -> bool;
    let kinds: [(&str, KindPred); 3] = [
        ("delta", |n| n.ends_with(".delta")),
        ("segment", |n| n.contains(".seg-")),
        ("snapshot", |n| n.contains(".snap-")),
    ];
    for (kind, pred) in kinds {
        let dir = tmpstore(&format!("trunc-{kind}"));
        let platform = store_platform(Parallelism::Threads(1));
        platform.attach_store(ProvStore::open(&dir).unwrap(), 8).unwrap();
        let exec = platform.execution("e");
        exec.ingest(generate_corpus(2, 1, 20));
        exec.execute(&["Normaliser"]).unwrap();
        if kind == "segment" {
            // segments only exist after compaction seals the delta
            platform.store().unwrap().compact("e").unwrap();
        }
        assert!(exec.evict().unwrap());

        let store_root = platform.store().unwrap().root().to_path_buf();
        let files = files_matching(&store_root, pred);
        assert!(!files.is_empty(), "no {kind} file produced");
        truncate_tail(&files[0]);

        let why = ProvQuery::Why { uri: "r0".into() };
        let (response, _) = handle_line(&platform, &query_request("e", &why));
        let parsed = Json::parse(&response).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            parsed.get("code").and_then(Json::as_str),
            Some("store"),
            "{kind}: truncation must surface as a store error, got {response}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
