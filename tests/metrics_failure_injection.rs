//! Failure injection for the observability layer: when a service fails
//! midway through a workflow, the metrics must stay consistent — the error
//! counter ticks, the per-call span still records (RAII drop), and no
//! in-flight gauge is left dangling.
//!
//! A sibling of `tests/failure_injection.rs`, kept as its own test binary
//! because `weblab_obs` metrics are process-global and that binary's tests
//! run concurrently in one process. Tests here serialise on a mutex.

use std::sync::Mutex;

use weblab::obs;
use weblab::workflow::services::Normaliser;
use weblab::workflow::{CallContext, Orchestrator, Service, Workflow, WorkflowError};
use weblab::xml::Document;

static SERIAL: Mutex<()> = Mutex::new(());

/// Fails after partially mutating the document (same shape as the
/// `FailsMidway` service of `tests/failure_injection.rs`).
struct FailsMidway;

impl Service for FailsMidway {
    fn name(&self) -> &str {
        "FailsMidway"
    }
    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let root = doc.root();
        let n = doc.append_element(root, "Partial")?;
        ctx.register(doc, n)?;
        Err(WorkflowError::Service {
            service: "FailsMidway".into(),
            message: "simulated crash".into(),
        })
    }
}

fn corpus() -> Document {
    weblab::workflow::generator::generate_corpus(42, 1, 20)
}

#[test]
fn failed_service_increments_errors_and_leaks_no_spans() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::enable();
    let wf = Workflow::new().then(Normaliser).then(FailsMidway);
    let mut doc = corpus();
    let err = Orchestrator::new().execute(&wf, &mut doc).unwrap_err();
    assert!(matches!(err, WorkflowError::Service { .. }));
    let snap = obs::snapshot();
    obs::disable();

    // exactly one successful call (Normaliser), exactly one failure
    assert_eq!(snap.counter("workflow.calls"), 1);
    assert_eq!(snap.counter("workflow.errors"), 1);
    // the failing call's span recorded anyway: RAII drop runs on the error
    // path, so both services have a timing observation…
    let norm = snap
        .histogram("workflow.service.Normaliser.duration_ns")
        .expect("Normaliser span recorded");
    assert_eq!(norm.count, 1);
    let failed = snap
        .histogram("workflow.service.FailsMidway.duration_ns")
        .expect("failed call's span still recorded");
    assert_eq!(failed.count, 1);
    // …and the in-flight gauge balanced back to zero
    assert_eq!(snap.gauge("workflow.calls.inflight"), 0);
    // only the successful call contributed a fragment-size observation
    let frag = snap.histogram("workflow.fragment_nodes").expect("fragments");
    assert_eq!(frag.count, 1);
}

#[test]
fn failure_inside_parallel_block_still_balances() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::enable();
    let wf = Workflow::new().then_parallel(vec![
        Workflow::new().then(Normaliser),
        Workflow::new().then(FailsMidway),
    ]);
    let mut doc = corpus();
    assert!(Orchestrator::new().execute(&wf, &mut doc).is_err());
    let snap = obs::snapshot();
    obs::disable();
    assert_eq!(snap.counter("workflow.errors"), 1);
    assert_eq!(snap.gauge("workflow.calls.inflight"), 0);
}

#[test]
fn counters_across_failure_then_success_accumulate() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::enable();
    let mut doc = corpus();
    let bad = Workflow::new().then(FailsMidway);
    assert!(Orchestrator::new().execute(&bad, &mut doc).is_err());
    // the same orchestrator (and metrics) survive into a successful run
    let good = Workflow::new().then(Normaliser);
    let mut doc2 = corpus();
    Orchestrator::new().execute(&good, &mut doc2).unwrap();
    let snap = obs::snapshot();
    obs::disable();
    assert_eq!(snap.counter("workflow.errors"), 1);
    assert_eq!(snap.counter("workflow.calls"), 1);
    assert_eq!(snap.gauge("workflow.calls.inflight"), 0);
}
