//! Semantic corner cases of the pattern language: recursive element
//! nesting, multi-step variable bindings, temporal boundaries, and the
//! interaction of the indexed evaluator with state views.

use weblab::xml::{CallLabel, Document};
use weblab::xpath::{
    eval_pattern, eval_pattern_indexed, parse_pattern, ElementIndex, Env, EvalOptions,
};

/// `T` elements nested inside `T` elements — descendant steps must reach
/// both levels and produce distinct embeddings.
fn nested_doc() -> Document {
    let mut d = Document::new("R");
    let root = d.root();
    let outer = d.append_element(root, "T").unwrap();
    d.register_resource(outer, "outer", Some(CallLabel::new("S", 1)))
        .unwrap();
    let c1 = d.append_element(outer, "C").unwrap();
    d.register_resource(c1, "c-outer", None).unwrap();
    let inner = d.append_element(outer, "T").unwrap();
    d.register_resource(inner, "inner", Some(CallLabel::new("S", 2)))
        .unwrap();
    let c2 = d.append_element(inner, "C").unwrap();
    d.register_resource(c2, "c-inner", None).unwrap();
    d
}

#[test]
fn descendant_steps_reach_nested_occurrences() {
    let d = nested_doc();
    let p = parse_pattern("//T[$x := @id]/C").unwrap();
    let t = eval_pattern(&p, &d.view());
    let mut pairs: Vec<(String, String)> = t
        .rows
        .iter()
        .map(|r| (r.uri.clone(), r.values[0].to_string()))
        .collect();
    pairs.sort();
    assert_eq!(
        pairs,
        vec![
            ("c-inner".to_string(), "inner".to_string()),
            ("c-outer".to_string(), "outer".to_string()),
        ]
    );
}

#[test]
fn double_descendant_does_not_duplicate_tuples() {
    let d = nested_doc();
    // //T//C: c-inner is reachable from both outer and inner T; with
    // distinct $x bindings both tuples are kept, but identical tuples are
    // not duplicated
    let p = parse_pattern("//T[$x := @id]//C").unwrap();
    let t = eval_pattern(&p, &d.view());
    assert_eq!(t.rows.len(), 3); // (c-outer,outer) (c-inner,outer) (c-inner,inner)
    let unbound = parse_pattern("//T//C").unwrap();
    let t2 = eval_pattern(&unbound, &d.view());
    // without $x the two c-inner embeddings collapse into one tuple
    assert_eq!(t2.rows.len(), 2);
}

#[test]
fn created_before_boundary_is_strict() {
    let d = nested_doc();
    let at_1 = parse_pattern("//T[created-before(1)]").unwrap();
    assert!(eval_pattern(&at_1, &d.view()).is_empty()); // t=1 is NOT < 1
    let at_2 = parse_pattern("//T[created-before(2)]").unwrap();
    let t = eval_pattern(&at_2, &d.view());
    assert_eq!(t.rows.len(), 1);
    assert_eq!(t.rows[0].uri, "outer");
}

#[test]
fn chained_variable_bindings_across_steps() {
    let mut d = Document::new("R");
    let root = d.root();
    for (a, b) in [("1", "1"), ("2", "9")] {
        let x = d.append_element(root, "X").unwrap();
        d.set_attr(x, "k", a).unwrap();
        let y = d.append_element(x, "Y").unwrap();
        d.set_attr(y, "k", b).unwrap();
        d.register_resource(y, format!("y{a}{b}"), None).unwrap();
    }
    // bind $a on X and $b on Y; both become columns
    let p = parse_pattern("//X[$a := @k]/Y[$b := @k]").unwrap();
    let t = eval_pattern(&p, &d.view());
    assert_eq!(t.columns, vec!["a".to_string(), "b".to_string()]);
    assert_eq!(t.rows.len(), 2);
    assert_eq!(t.rows[0].values[0].to_string(), "1");
    assert_eq!(t.rows[1].values[1].to_string(), "9");
}

#[test]
fn indexed_evaluation_matches_scan_on_every_state() {
    let d = nested_doc();
    let index = ElementIndex::build(&d.view());
    for pattern in ["//T[$x := @id]/C", "//C", "//*", "/R//T"] {
        let p = parse_pattern(pattern).unwrap();
        // including an earlier state (index built over the final one)
        let half = weblab::xml::StateMark::from_counts(3, 2);
        for view in [d.view(), d.view_at(half)] {
            let scan = eval_pattern(&p, &view);
            let indexed = eval_pattern_indexed(
                &p,
                &view,
                &Env::new(),
                &EvalOptions::default(),
                Some(&index),
            );
            assert_eq!(scan.rows, indexed.rows, "{pattern}");
        }
    }
}

#[test]
fn wildcard_root_child_vs_descendant() {
    let d = nested_doc();
    let opts = EvalOptions { require_uri: false };
    let child = parse_pattern("/*").unwrap();
    let t = weblab::xpath::eval_pattern_with(&child, &d.view(), &Env::new(), &opts);
    assert_eq!(t.rows.len(), 1); // just the root
    let desc = parse_pattern("//*").unwrap();
    let t2 = weblab::xpath::eval_pattern_with(&desc, &d.view(), &Env::new(), &opts);
    assert_eq!(t2.rows.len(), 5); // every element
}

#[test]
fn produced_by_matches_only_exact_labels() {
    let d = nested_doc();
    let p = parse_pattern("//T[produced-by('S', 2)]").unwrap();
    let t = eval_pattern(&p, &d.view());
    assert_eq!(t.rows.len(), 1);
    assert_eq!(t.rows[0].uri, "inner");
    // wrong service, right time
    let q = parse_pattern("//T[produced-by('Other', 2)]").unwrap();
    assert!(eval_pattern(&q, &d.view()).is_empty());
}

#[test]
fn root_anchored_child_path_requires_exact_spine() {
    let d = nested_doc();
    // /R/T/C matches only the outer chain, not the nested T's C
    let p = parse_pattern("/R/T/C").unwrap();
    let t = eval_pattern(&p, &d.view());
    assert_eq!(t.rows.len(), 1);
    assert_eq!(t.rows[0].uri, "c-outer");
    // /T does not match (root is R)
    let q = parse_pattern("/T/C").unwrap();
    assert!(eval_pattern(&q, &d.view()).is_empty());
}
