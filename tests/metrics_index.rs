//! Perf guard for the reachability index behind `ExecutionHandle`,
//! verified through the deterministic `weblab_obs` counters (own test
//! binary: the metrics registry is process-global, so these tests must not
//! share a process with other engine work; within the binary they
//! serialise on a mutex).
//!
//! The property under guard: `ExecutionHandle::deps`/`rdeps` (and the
//! structured queries behind `weblab serve`, ranked analytics included)
//! answer from the published reachability index — **zero** full edge-list
//! traversals.

use std::sync::{Arc, Mutex as StdMutex};

use weblab::obs;
use weblab::platform::{Mapper, Platform, ProvQuery, QueryOpts, RankDirection};
use weblab::workflow::generator::generate_corpus;
use weblab::workflow::services::{self, LanguageExtractor, Normaliser, Tokeniser};
use weblab::workflow::Service;

static SERIAL: StdMutex<()> = StdMutex::new(());

const BUILDS: &str = "prov.index.builds";
const HITS: &str = "prov.index.hits";
const TRAVERSALS: &str = "prov.index.traversals";

fn platform_with_pipeline() -> Platform {
    let rules = services::default_rules();
    let platform = Platform::new(Mapper::native());
    let builtins: Vec<Box<dyn Service>> = vec![
        Box::new(Normaliser),
        Box::new(LanguageExtractor),
        Box::new(Tokeniser),
    ];
    for svc in builtins {
        let texts: Vec<String> = rules
            .rules_for(svc.name())
            .iter()
            .map(|r| r.to_string())
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        platform.register_service(Arc::from(svc), &refs).unwrap();
    }
    platform
}

#[test]
fn indexed_queries_perform_zero_graph_traversals() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let platform = platform_with_pipeline();
    let exec = platform.execution("indexed");
    exec.ingest(generate_corpus(7, 3, 10));
    exec.execute(&["Normaliser", "LanguageExtractor", "Tokeniser"])
        .unwrap();
    let uris: Vec<String> = {
        let snap = exec.snapshot().unwrap();
        snap.graph.sources.iter().map(|s| s.uri.clone()).collect()
    };
    assert!(uris.len() >= 4, "workload produced too few resources");

    obs::reset();
    obs::enable();
    let mut lookups = 0u64;
    for uri in &uris {
        let _ = exec.deps(uri).unwrap();
        let _ = exec.rdeps(uri).unwrap();
        lookups += 2;
        let _ = exec.query(&ProvQuery::Why { uri: uri.clone() }).unwrap();
        let _ = exec
            .query(&ProvQuery::Lineage {
                uri: uri.clone(),
                depth: 3,
            })
            .unwrap();
        let _ = exec
            .query(&ProvQuery::ImpactedBy { uri: uri.clone() })
            .unwrap();
    }
    let snap = obs::snapshot();
    obs::disable();

    // every deps/rdeps answered straight from the index adjacency (the
    // structured queries tick hits on top)…
    assert!(snap.counter(HITS) >= lookups, "every lookup must hit the index");
    // …and neither they nor the structured queries walked the edge list
    assert_eq!(
        snap.counter(TRAVERSALS),
        0,
        "indexed queries must not re-walk the provenance edge list"
    );
    // the index was already built and published before the query storm:
    // answering costs no builds at all
    assert_eq!(snap.counter(BUILDS), 0, "queries must reuse the published index");
}

#[test]
fn ranked_analytics_tick_their_counters_without_traversals() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let platform = platform_with_pipeline();
    let exec = platform.execution("ranked");
    exec.ingest(generate_corpus(7, 3, 10));
    exec.execute(&["Normaliser", "LanguageExtractor", "Tokeniser"])
        .unwrap();
    let uris: Vec<String> = {
        let snap = exec.snapshot().unwrap();
        snap.graph.sources.iter().map(|s| s.uri.clone()).collect()
    };
    assert!(uris.len() >= 4);

    obs::reset();
    obs::enable();
    let ranked = exec
        .rank(&uris[..1], RankDirection::Up, &QueryOpts::default(), &[])
        .unwrap();
    let _ = exec.summary(Some(&uris[0])).unwrap();
    let snap = obs::snapshot();
    obs::disable();

    // the analytics layer instruments itself: one rank query + one
    // summary, the seed always visited, and never an edge-list re-walk —
    // rank expands index adjacency, summary reads precomputed closures
    assert_eq!(snap.counter("prov.rank.queries"), 2);
    assert!(snap.counter("prov.rank.visited") >= ranked.len() as u64);
    assert!(snap.counter("prov.rank.visited") >= 1);
    assert_eq!(snap.counter(TRAVERSALS), 0);
    assert_eq!(snap.counter(BUILDS), 0, "rank must reuse the published index");
}

#[test]
fn live_ingestion_maintains_the_index_incrementally() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let platform = platform_with_pipeline();

    obs::reset();
    obs::enable();
    let exec = platform.execution("incremental");
    exec.ingest(generate_corpus(11, 2, 10));
    exec.enable_live();
    exec.execute(&["Normaliser", "LanguageExtractor"]).unwrap();
    exec.execute(&["Tokeniser"]).unwrap();
    let builds_after_runs = obs::snapshot().counter(BUILDS);
    let epoch_after_runs = exec.snapshot().unwrap().epoch;
    let _ = exec.deps(&exec.snapshot().unwrap().graph.sources[0].uri).unwrap();
    let snap = obs::snapshot();
    obs::disable();

    // one build when the execution's index state is created; every call
    // delta after that is folded in incrementally (no from_graph rebuilds)
    assert_eq!(
        builds_after_runs, 1,
        "live deltas must extend the index, not rebuild it"
    );
    // each committed call published a new epoch
    assert!(
        epoch_after_runs >= 3,
        "expected one published epoch per live call, got {epoch_after_runs}"
    );
    assert_eq!(snap.counter(TRAVERSALS), 0);
    assert!(snap.counter(HITS) >= 1);
}
