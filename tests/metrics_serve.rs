//! Golden-counter test for the serve path's observability (own test
//! binary: the metrics registry is process-global, so this must not share
//! a process with other serve work; within the binary the tests serialise
//! on a mutex).
//!
//! The protocol counters are **deterministic**: a fixed request script
//! produces the same `serve.requests`, `serve.batch.requests`,
//! `serve.batch.subs`, `serve.shed` and `serve.queue.depth` values at
//! every worker count, because they tick at admission/dispatch — not on
//! scheduler-dependent paths.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex as StdMutex};
use std::thread;

use weblab::json::Json;
use weblab::obs;
use weblab::platform::{Mapper, Platform};
use weblab::serve::Server;

static SERIAL: StdMutex<()> = StdMutex::new(());

const XML: &str = "<Resource wl:id=\"weblab://doc/m\">\
    <NativeContent wl:id=\"weblab://src/0\" wl:s=\"Source\" wl:t=\"0\" mime=\"text/plain\">\
    golden counters</NativeContent></Resource>";

fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Json {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    Json::parse(response.trim_end()).unwrap()
}

/// Run the fixed request script at `workers` threads and return the
/// resulting metrics snapshot.
fn run_script(workers: usize) -> obs::Snapshot {
    obs::reset();
    obs::enable();
    let platform = Arc::new(Platform::new(Mapper::native()));
    let server = Server::bind(Arc::clone(&platform), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = thread::spawn(move || server.run(workers));

    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;

    // the script: 1 ingest + 2 plain queries + 2 batches (3 and 5 subs)
    // + 1 failing query + shutdown = 7 dispatched requests
    let ingest = format!(
        "{{\"op\":\"ingest\",\"exec\":\"m\",\"xml\":{}}}",
        Json::str(XML)
    );
    assert_eq!(
        roundtrip(&mut stream, &mut reader, &ingest)
            .get("ok")
            .and_then(Json::as_bool),
        Some(true)
    );
    let why = "{\"op\":\"why\",\"exec\":\"m\",\"uri\":\"weblab://src/0\"}";
    for _ in 0..2 {
        let response = roundtrip(&mut stream, &mut reader, why);
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    }
    for subs in [3usize, 5] {
        let batch = format!(
            "{{\"op\":\"batch\",\"exec\":\"m\",\"requests\":[{}]}}",
            vec!["{\"op\":\"why\",\"uri\":\"weblab://src/0\"}"; subs].join(",")
        );
        let response = roundtrip(&mut stream, &mut reader, &batch);
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            response
                .get("result")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(subs)
        );
    }
    let failing = "{\"op\":\"why\",\"exec\":\"ghost\",\"uri\":\"r\"}";
    assert_eq!(
        roundtrip(&mut stream, &mut reader, failing)
            .get("ok")
            .and_then(Json::as_bool),
        Some(false)
    );
    let bye = roundtrip(&mut stream, &mut reader, "{\"op\":\"shutdown\"}");
    assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
    drop(stream);
    server_thread.join().unwrap().unwrap();

    let snap = obs::snapshot();
    obs::disable();
    snap
}

#[test]
fn serve_counters_are_golden_and_worker_count_invariant() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut snapshots = Vec::new();
    for workers in [1usize, 2, 4] {
        let snap = run_script(workers);
        // golden values: the script dispatches exactly 7 requests, two of
        // them batches carrying 8 subs total, one failing; nothing sheds
        assert_eq!(snap.counter("serve.requests"), 7, "{workers} workers");
        assert_eq!(snap.counter("serve.errors"), 1, "{workers} workers");
        assert_eq!(snap.counter("serve.batch.requests"), 2, "{workers} workers");
        assert_eq!(snap.counter("serve.batch.subs"), 8, "{workers} workers");
        assert_eq!(snap.counter("serve.shed"), 0, "{workers} workers");
        assert_eq!(snap.counter("serve.conn.accepted"), 1, "{workers} workers");
        assert_eq!(snap.counter("serve.conn.rejected"), 0, "{workers} workers");
        // every admitted request completed: the depth gauge is back to 0
        assert_eq!(snap.gauge("serve.queue.depth"), 0, "{workers} workers");
        assert_eq!(snap.histogram("serve.request_ns").map(|h| h.count), Some(7));
        snapshots.push((workers, snap));
    }
    // the deterministic counters are identical across worker counts
    let (_, reference) = &snapshots[0];
    for (workers, snap) in &snapshots[1..] {
        for name in [
            "serve.requests",
            "serve.errors",
            "serve.batch.requests",
            "serve.batch.subs",
            "serve.shed",
            "serve.conn.accepted",
            "serve.conn.rejected",
        ] {
            assert_eq!(
                snap.counter(name),
                reference.counter(name),
                "{name} must not depend on worker count ({workers} workers)"
            );
        }
    }
}
