//! Failure injection: misbehaving services, malformed inputs, and broken
//! rule sets must surface as errors without corrupting stored state.

use std::sync::Arc;

use weblab::platform::{Mapper, Platform, PlatformError};
use weblab::prov::{infer_provenance, EngineOptions, RuleSet};
use weblab::workflow::generator::generate_corpus;
use weblab::workflow::services::Normaliser;
use weblab::workflow::{CallContext, Orchestrator, Service, Workflow, WorkflowError};
use weblab::xml::Document;

/// Fails after partially mutating the document.
struct FailsMidway;

impl Service for FailsMidway {
    fn name(&self) -> &str {
        "FailsMidway"
    }
    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let root = doc.root();
        let n = doc.append_element(root, "Partial")?;
        ctx.register(doc, n)?;
        Err(WorkflowError::Service {
            service: "FailsMidway".into(),
            message: "simulated crash".into(),
        })
    }
}

/// Tries to register the same URI twice.
struct DuplicateUri;

impl Service for DuplicateUri {
    fn name(&self) -> &str {
        "DuplicateUri"
    }
    fn call(&self, doc: &mut Document, _ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let root = doc.root();
        let a = doc.append_element(root, "A")?;
        doc.register_resource(a, "dup", None)?;
        let b = doc.append_element(root, "B")?;
        doc.register_resource(b, "dup", None)?; // duplicate → Err
        Ok(())
    }
}

#[test]
fn orchestrator_propagates_service_failures() {
    let wf = Workflow::new().then(Normaliser).then(FailsMidway);
    let mut doc = generate_corpus(1, 1, 20);
    let err = Orchestrator::new().execute(&wf, &mut doc).unwrap_err();
    assert!(matches!(err, WorkflowError::Service { .. }));
    assert!(err.to_string().contains("simulated crash"));
}

#[test]
fn duplicate_uri_registration_fails_the_call() {
    let wf = Workflow::new().then(DuplicateUri);
    let mut doc = Document::new("Resource");
    let err = Orchestrator::new().execute(&wf, &mut doc).unwrap_err();
    assert!(matches!(err, WorkflowError::Xml(_)));
}

#[test]
fn platform_failure_leaves_stored_document_untouched() {
    let p = Platform::new(Mapper::native());
    p.register_service(Arc::new(Normaliser), &[]).unwrap();
    p.register_service(Arc::new(FailsMidway), &[]).unwrap();
    p.ingest("e", generate_corpus(2, 1, 20));
    let before = p
        .recorder()
        .repository
        .with("e", |d| d.node_count())
        .unwrap();
    let err = p.execute("e", &["Normaliser", "FailsMidway"]).unwrap_err();
    assert!(matches!(err, PlatformError::Workflow(_)));
    // the repository still holds the pre-execution version (all-or-nothing)
    let after = p
        .recorder()
        .repository
        .with("e", |d| d.node_count())
        .unwrap();
    assert_eq!(before, after);
    // no trace entries were persisted either
    assert!(p.recorder().traces.get("e").is_none());
}

#[test]
fn failing_branch_aborts_the_parallel_block() {
    let wf = Workflow::new().then_parallel(vec![
        Workflow::new().then(Normaliser),
        Workflow::new().then(FailsMidway),
    ]);
    let mut doc = generate_corpus(3, 1, 20);
    assert!(Orchestrator::new().execute(&wf, &mut doc).is_err());
}

#[test]
fn rules_over_missing_structure_yield_empty_graphs_not_errors() {
    let mut rules = RuleSet::new();
    rules
        .add_parsed("Normaliser", "//NoSuchTag[$x := @id] => //AlsoMissing[@ref = $x]")
        .unwrap();
    let wf = Workflow::new().then(Normaliser);
    let mut doc = generate_corpus(4, 1, 20);
    let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
    let g = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions::default());
    assert!(g.links.is_empty());
    assert!(!g.sources.is_empty()); // the Source table is still populated
}

#[test]
fn recorder_rejects_malformed_and_regressive_responses() {
    let p = Platform::new(Mapper::native());
    p.ingest("e", generate_corpus(5, 1, 20));
    // malformed XML
    assert!(p.recorder().record_exchange("e", "S", 1, "<broken").is_err());
    // well-formed but missing previously stored content
    assert!(p
        .recorder()
        .record_exchange("e", "S", 1, "<Resource/>")
        .is_err());
    // neither attempt corrupted the stored document
    assert!(p.recorder().repository.get("e").is_some());
    assert!(p.recorder().traces.get("e").is_none());
}

#[test]
fn sparql_errors_surface_through_the_request_manager() {
    let p = Platform::new(Mapper::native());
    p.register_service(Arc::new(Normaliser), &[]).unwrap();
    p.ingest("e", generate_corpus(6, 1, 20));
    p.execute("e", &["Normaliser"]).unwrap();
    let err = p.provenance_query("e", "SELEKT nonsense").unwrap_err();
    assert!(matches!(err, PlatformError::Sparql(_)));
}
