//! Failure injection: misbehaving services, malformed inputs, and broken
//! rule sets must surface as errors without corrupting stored state.

use std::sync::Arc;

use weblab::platform::{persist, Mapper, Platform, PlatformError};
use weblab::prov::{infer_provenance, EngineOptions, ProvenanceGraph, RuleSet};
use weblab::workflow::generator::generate_corpus;
use weblab::workflow::services::{self, Flaky, LanguageExtractor, Normaliser};
use weblab::workflow::{
    next_time, AttemptStatus, CallContext, FaultPolicy, Orchestrator, RetryPolicy, Service,
    Workflow, WorkflowError,
};
use weblab::xml::{to_xml_string, Document};

/// Fails after partially mutating the document.
struct FailsMidway;

impl Service for FailsMidway {
    fn name(&self) -> &str {
        "FailsMidway"
    }
    fn call(&self, doc: &mut Document, ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let root = doc.root();
        let n = doc.append_element(root, "Partial")?;
        ctx.register(doc, n)?;
        Err(WorkflowError::Service {
            service: "FailsMidway".into(),
            message: "simulated crash".into(),
        })
    }
}

/// Tries to register the same URI twice.
struct DuplicateUri;

impl Service for DuplicateUri {
    fn name(&self) -> &str {
        "DuplicateUri"
    }
    fn call(&self, doc: &mut Document, _ctx: &mut CallContext) -> Result<(), WorkflowError> {
        let root = doc.root();
        let a = doc.append_element(root, "A")?;
        doc.register_resource(a, "dup", None)?;
        let b = doc.append_element(root, "B")?;
        doc.register_resource(b, "dup", None)?; // duplicate → Err
        Ok(())
    }
}

#[test]
fn orchestrator_propagates_service_failures() {
    let wf = Workflow::new().then(Normaliser).then(FailsMidway);
    let mut doc = generate_corpus(1, 1, 20);
    let err = Orchestrator::new().execute(&wf, &mut doc).unwrap_err();
    assert!(matches!(err, WorkflowError::Service { .. }));
    assert!(err.to_string().contains("simulated crash"));
}

#[test]
fn duplicate_uri_registration_fails_the_call() {
    let wf = Workflow::new().then(DuplicateUri);
    let mut doc = Document::new("Resource");
    let err = Orchestrator::new().execute(&wf, &mut doc).unwrap_err();
    assert!(matches!(err, WorkflowError::Xml(_)));
}

#[test]
fn platform_failure_leaves_stored_document_untouched() {
    let p = Platform::new(Mapper::native());
    p.register_service(Arc::new(Normaliser), &[]).unwrap();
    p.register_service(Arc::new(FailsMidway), &[]).unwrap();
    p.ingest("e", generate_corpus(2, 1, 20));
    let before = p
        .recorder()
        .repository
        .with("e", |d| d.node_count())
        .unwrap();
    let err = p.execute("e", &["Normaliser", "FailsMidway"]).unwrap_err();
    assert!(matches!(err, PlatformError::Workflow(_)));
    // the repository still holds the pre-execution version (all-or-nothing)
    let after = p
        .recorder()
        .repository
        .with("e", |d| d.node_count())
        .unwrap();
    assert_eq!(before, after);
    // no trace entries were persisted either
    assert!(p.recorder().traces.get("e").is_none());
}

#[test]
fn failing_branch_aborts_the_parallel_block() {
    let wf = Workflow::new().then_parallel(vec![
        Workflow::new().then(Normaliser),
        Workflow::new().then(FailsMidway),
    ]);
    let mut doc = generate_corpus(3, 1, 20);
    assert!(Orchestrator::new().execute(&wf, &mut doc).is_err());
}

#[test]
fn rules_over_missing_structure_yield_empty_graphs_not_errors() {
    let mut rules = RuleSet::new();
    rules
        .add_parsed("Normaliser", "//NoSuchTag[$x := @id] => //AlsoMissing[@ref = $x]")
        .unwrap();
    let wf = Workflow::new().then(Normaliser);
    let mut doc = generate_corpus(4, 1, 20);
    let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
    let g = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions::default());
    assert!(g.links.is_empty());
    assert!(!g.sources.is_empty()); // the Source table is still populated
}

#[test]
fn recorder_rejects_malformed_and_regressive_responses() {
    let p = Platform::new(Mapper::native());
    p.ingest("e", generate_corpus(5, 1, 20));
    // malformed XML
    assert!(p.recorder().record_exchange("e", "S", 1, "<broken").is_err());
    // well-formed but missing previously stored content
    assert!(p
        .recorder()
        .record_exchange("e", "S", 1, "<Resource/>")
        .is_err());
    // neither attempt corrupted the stored document
    assert!(p.recorder().repository.get("e").is_some());
    assert!(p.recorder().traces.get("e").is_none());
}

/// The PR's acceptance scenario: a service that fails twice then succeeds
/// completes under `RetryPolicy { max_attempts: 3 }`, with the final
/// document byte-identical to a clean run and all three attempts recorded.
#[test]
fn service_failing_twice_then_succeeding_is_byte_identical_to_a_clean_run() {
    let mk = |fails| {
        Workflow::new()
            .then(Normaliser)
            .then(Flaky::failing(fails))
            .then(LanguageExtractor)
    };
    let mut clean = generate_corpus(8, 1, 20);
    Orchestrator::new().execute(&mk(0), &mut clean).unwrap();

    let mut faulty = generate_corpus(8, 1, 20);
    let orch = Orchestrator::new()
        .with_fault(FaultPolicy::retrying(RetryPolicy::with_max_attempts(3)));
    let outcome = orch.execute(&mk(2), &mut faulty).unwrap();

    assert_eq!(
        to_xml_string(&clean.view()),
        to_xml_string(&faulty.view()),
        "retried run must be indistinguishable from a first-try run"
    );
    let flaky: Vec<(u32, bool)> = outcome
        .attempts
        .iter()
        .filter(|a| a.service == "Flaky")
        .map(|a| (a.attempt, a.status == AttemptStatus::Succeeded))
        .collect();
    assert_eq!(flaky, vec![(1, false), (2, false), (3, true)]);
    assert_eq!(outcome.trace.len(), 3); // rolled-back attempts never reach the trace
}

/// A skipped step reserves its call instant, and posthoc inference over the
/// gapped trace still works.
#[test]
fn skipped_step_gap_is_tolerated_by_inference() {
    let mut doc = generate_corpus(6, 1, 20);
    let wf = Workflow::new()
        .then(Normaliser)
        .then(Flaky::failing(99))
        .then(LanguageExtractor);
    let orch = Orchestrator::new().with_fault(FaultPolicy::skipping());
    let outcome = orch.execute(&wf, &mut doc).unwrap();
    assert_eq!(outcome.trace.len(), 2);
    assert_eq!(
        outcome.trace.calls[1].time,
        outcome.trace.calls[0].time + 2,
        "the skipped step's instant must stay reserved"
    );
    let g = infer_provenance(
        &doc,
        &outcome.trace,
        &services::default_rules(),
        &EngineOptions::default(),
    );
    assert!(g.is_acyclic());
    assert!(!g.links.is_empty());
}

/// An aborted call's rollback restores node and resource counts exactly —
/// no half-registered resources survive.
#[test]
fn rollback_restores_node_and_resource_counts() {
    let mut doc = generate_corpus(7, 1, 20);
    let before_nodes = doc.node_count();
    let before_resources = doc.resource_nodes().len();
    let wf = Workflow::new().then(FailsMidway);
    let err = Orchestrator::new().execute(&wf, &mut doc).unwrap_err();
    assert!(matches!(err, WorkflowError::Service { .. }));
    assert_eq!(doc.node_count(), before_nodes);
    assert_eq!(doc.resource_nodes().len(), before_resources);
    // the rolled-back registration's uri is free again
    let root = doc.root();
    let n = doc.append_element(root, "Reclaim").unwrap();
    assert!(doc
        .register_resource(n, "weblab://res/FailsMidway-t1-1", None)
        .is_ok());
}

fn link_pairs(g: &ProvenanceGraph) -> Vec<(String, String)> {
    let mut pairs: Vec<(String, String)> = g
        .links
        .iter()
        .map(|l| (l.from_uri.clone(), l.to_uri.clone()))
        .collect();
    pairs.sort();
    pairs
}

/// Crash after the first step, resume from the persisted checkpoint: the
/// inferred provenance links match a run that never crashed.
#[test]
fn resume_after_crash_produces_the_same_inferred_links() {
    let dir = std::env::temp_dir().join(format!("weblab-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let full_wf = || Workflow::new().then(Normaliser).then(LanguageExtractor);

    let mut clean = generate_corpus(9, 1, 20);
    let clean_outcome = Orchestrator::new().execute(&full_wf(), &mut clean).unwrap();

    // first process: run only the first step, checkpointing, then "crash"
    let orch = Orchestrator::new();
    let step_names = full_wf().step_names();
    let mut doc = generate_corpus(9, 1, 20);
    let start = next_time(&doc);
    orch.execute_resumable(
        &Workflow::new().then(Normaliser),
        &mut doc,
        start,
        0,
        &mut |done, d, o, t| {
            persist::save_execution(&dir, "e", d, &o.trace).unwrap();
            persist::save_checkpoint(
                &dir,
                "e",
                &persist::Checkpoint {
                    completed_steps: done,
                    next_time: t,
                    step_names: step_names.clone(),
                },
            )
            .unwrap();
        },
    )
    .unwrap();
    drop(doc); // the crash: in-memory state is gone

    // second process: reload and resume from the checkpoint
    let ckpt = persist::load_checkpoint(&dir, "e").unwrap().unwrap();
    assert_eq!(ckpt.completed_steps, 1);
    let (mut resumed, prior) = persist::load_execution(&dir, "e").unwrap();
    let outcome = orch
        .execute_resumable(
            &full_wf(),
            &mut resumed,
            ckpt.next_time,
            ckpt.completed_steps,
            &mut |_, _, _, _| {},
        )
        .unwrap();
    assert_eq!(outcome.trace.len(), 1); // only the remaining step ran
    let mut full_trace = prior;
    full_trace.calls.extend(outcome.trace.calls);

    let rules = services::default_rules();
    let opts = EngineOptions::default();
    let g_clean = infer_provenance(&clean, &clean_outcome.trace, &rules, &opts);
    let g_resumed = infer_provenance(&resumed, &full_trace, &rules, &opts);
    assert_eq!(link_pairs(&g_clean), link_pairs(&g_resumed));
    assert!(!g_resumed.links.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sparql_errors_surface_through_the_request_manager() {
    let p = Platform::new(Mapper::native());
    p.register_service(Arc::new(Normaliser), &[]).unwrap();
    p.ingest("e", generate_corpus(6, 1, 20));
    p.execute("e", &["Normaliser"]).unwrap();
    let err = p.execution("e").sparql("SELEKT nonsense").unwrap_err();
    assert!(matches!(err, PlatformError::Sparql(_)));
}
