//! Integration of the provenance analysis layers — why-provenance, views
//! and compact storage — over a realistically sized pipeline run.

use weblab::prov::storage::{storage_stats, CompactGraph};
use weblab::prov::views::{apply_view, ViewNode, ViewSpec};
use weblab::prov::{infer_provenance, query, EngineOptions, InheritMode};
use weblab::workflow::generator::generate_mixed_corpus;
use weblab::workflow::services::{
    self, Indexer, LanguageExtractor, Normaliser, OcrExtractor, SpeechTranscriber, Summariser,
    Translator,
};
use weblab::workflow::{Orchestrator, Workflow};

fn executed() -> (weblab::xml::Document, weblab::prov::ProvenanceGraph) {
    let mut doc = generate_mixed_corpus(31, 3, 35);
    let wf = Workflow::new()
        .then(Normaliser)
        .then(OcrExtractor)
        .then(SpeechTranscriber)
        .then(LanguageExtractor)
        .then(Translator::default())
        .then(LanguageExtractor)
        .then(Summariser)
        .then(Indexer);
    let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
    let graph = infer_provenance(
        &doc,
        &outcome.trace,
        &services::default_rules(),
        &EngineOptions {
            inherit: InheritMode::GraphPropagation,
            ..Default::default()
        },
    );
    (doc, graph)
}

#[test]
fn why_provenance_of_every_summary_reaches_a_source() {
    let (doc, graph) = executed();
    let v = doc.view();
    let mut summaries = 0;
    for &node in doc.resource_nodes() {
        if v.name(node) != Some("Summary") {
            continue;
        }
        summaries += 1;
        let uri = v.uri(node).unwrap();
        let w = query::why(&graph, uri);
        assert!(
            w.resources.iter().any(|r| r.starts_with("weblab://src/")),
            "summary {uri} does not trace to a source"
        );
        // lineage depth 1 is exactly the direct dependencies
        let d1 = query::lineage_to_depth(&graph, uri, 1);
        let direct = graph.dependencies_of(uri);
        assert_eq!(d1.len() - 1, direct.len());
    }
    assert!(summaries >= 9); // 9 units (3 modalities × 3) get summaries
}

#[test]
fn impact_of_a_source_equals_reverse_reachability() {
    let (_, graph) = executed();
    let impacted = query::impacted_by(&graph, "weblab://src/0");
    // cross-check against transitive dependencies from the other side
    for uri in &impacted {
        assert!(
            graph
                .transitive_dependencies(uri)
                .contains(&"weblab://src/0".to_string()),
            "{uri} reported impacted but does not depend on the source"
        );
    }
    assert!(!impacted.is_empty());
}

#[test]
fn module_view_over_the_full_pipeline() {
    let (_, graph) = executed();
    let spec = ViewSpec::new()
        .group("Normaliser", "Ingestion")
        .group("OcrExtractor", "Ingestion")
        .group("SpeechTranscriber", "Ingestion")
        .group("LanguageExtractor", "Enrichment")
        .group("Translator", "Enrichment")
        .group("Summariser", "Delivery")
        .group("Indexer", "Delivery");
    let view = apply_view(&graph, &spec);
    let delivery = ViewNode::Module("Delivery".into());
    let ingestion = ViewNode::Module("Ingestion".into());
    assert!(view.depends_on(&delivery, &ingestion));
    // raw sources stay visible as ungrouped resources
    assert!(view
        .edges
        .iter()
        .any(|(_, t)| matches!(t, ViewNode::Resource(r) if r.starts_with("weblab://src/"))));
    // the view is never larger than the base graph
    assert!(view.edges.len() <= graph.links.len());
}

#[test]
fn compact_storage_round_trips_the_pipeline_graph() {
    let (_, graph) = executed();
    let compact = CompactGraph::from_graph(&graph);
    assert_eq!(compact.expand(), graph.links);
    let stats = storage_stats(&graph);
    assert_eq!(stats.edges, graph.links.len());
    assert!(stats.resources <= 2 * stats.edges + 1);
}
