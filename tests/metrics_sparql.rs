//! Golden counter tests for the SPARQL planner behind `weblab serve`
//! (own test binary: the metrics registry is process-global, so these
//! tests must not share a process with other engine work; within the
//! binary they serialise on a mutex).
//!
//! The property under guard: the `rdf.plan.*` counters are **golden** —
//! a fixed query sequence produces exactly the same plan builds, cache
//! hits, cache misses and dead plans regardless of how many worker
//! threads the server runs, because the per-epoch [`QueryEngine`] holds
//! its plan-cache lock across parse + compile.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex as StdMutex};
use std::thread;

use weblab::json::Json;
use weblab::obs;
use weblab::platform::{Mapper, Platform};
use weblab::serve::{handle_line_with, Server, DEFAULT_MAX_ROWS};
use weblab::workflow::generator::generate_corpus;
use weblab::workflow::services::{self, LanguageExtractor, Normaliser, Tokeniser};
use weblab::workflow::Service;

static SERIAL: StdMutex<()> = StdMutex::new(());

const PLAN_BUILDS: &str = "rdf.plan.builds";
const PLAN_DEAD: &str = "rdf.plan.dead";
const CACHE_HITS: &str = "rdf.plan.cache.hits";
const CACHE_MISSES: &str = "rdf.plan.cache.misses";
const JOIN_PROBES: &str = "rdf.join.probes";

const PROV: &str = "PREFIX prov: <http://www.w3.org/ns/prov#> ";

fn serve_platform() -> Arc<Platform> {
    let rules = services::default_rules();
    let platform = Platform::new(Mapper::native());
    let builtins: Vec<Box<dyn Service>> = vec![
        Box::new(Normaliser),
        Box::new(LanguageExtractor),
        Box::new(Tokeniser),
    ];
    for svc in builtins {
        let texts: Vec<String> = rules
            .rules_for(svc.name())
            .iter()
            .map(|r| r.to_string())
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        platform.register_service(Arc::from(svc), &refs).unwrap();
    }
    Arc::new(platform)
}

/// Ingest and execute the fixed pipeline so `exec` has a published epoch.
fn prepare(platform: &Platform, exec_id: &str) {
    let exec = platform.execution(exec_id);
    exec.ingest(generate_corpus(7, 3, 10));
    exec.execute(&["Normaliser", "LanguageExtractor", "Tokeniser"])
        .unwrap();
}

/// The fixed query sequence. Repeats exercise the plan cache; the last
/// query names a constant absent from any export, compiling to a dead
/// plan. Expected counter deltas (same at any worker count):
/// 4 distinct texts → 4 misses + 4 builds, 3 repeats → 3 hits, 1 dead.
fn query_sequence() -> Vec<String> {
    let derived = format!("{PROV}SELECT ?d ?s WHERE {{ ?d prov:wasDerivedFrom ?s . }}");
    let join = format!(
        "{PROV}SELECT ?e ?a WHERE {{ ?e prov:wasGeneratedBy ?a . ?e prov:wasDerivedFrom ?s . }}"
    );
    let typed = format!(
        "{PROV}SELECT DISTINCT ?e WHERE {{ ?e <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> prov:Entity . }}"
    );
    let dead = format!("{PROV}SELECT ?x WHERE {{ ?x <urn:no-such-predicate> ?y . }}");
    vec![
        derived.clone(),
        join.clone(),
        derived, // cache hit
        typed,
        join, // cache hit
        dead.clone(),
        dead, // cache hit (dead plans are cached too)
    ]
}

fn sparql_request(exec: &str, query: &str) -> String {
    Json::obj(vec![
        ("op", Json::str("sparql")),
        ("exec", Json::str(exec)),
        ("query", Json::str(query)),
    ])
    .to_string()
}

/// Run the fixed sequence against a server with `workers` threads over
/// one serial connection and return the plan-counter quadruple.
fn run_sequence_at(workers: usize) -> (u64, u64, u64, u64) {
    let platform = serve_platform();
    prepare(&platform, "golden");
    let server = Server::bind(Arc::clone(&platform), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = thread::spawn(move || server.run(workers));

    obs::reset();
    obs::enable();
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for query in query_sequence() {
        let line = sparql_request("golden", &query);
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(
            response.contains("\"ok\":true"),
            "query failed at {workers} workers: {response}"
        );
    }
    let snap = obs::snapshot();
    obs::disable();

    stream
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .and_then(|()| stream.flush())
        .unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    server_thread.join().unwrap().unwrap();

    assert!(
        snap.counter(JOIN_PROBES) > 0,
        "the non-dead queries must probe the columnar indexes"
    );
    (
        snap.counter(PLAN_BUILDS),
        snap.counter(CACHE_HITS),
        snap.counter(CACHE_MISSES),
        snap.counter(PLAN_DEAD),
    )
}

#[test]
fn plan_counters_are_identical_at_1_2_and_4_workers() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let golden = run_sequence_at(1);
    // 4 distinct query texts compile once each; 3 repeats hit the cache;
    // exactly one text names an absent constant and goes dead.
    assert_eq!(
        golden,
        (4, 3, 4, 1),
        "(builds, cache hits, cache misses, dead) at 1 worker"
    );
    for workers in [2usize, 4] {
        let counters = run_sequence_at(workers);
        assert_eq!(
            counters, golden,
            "rdf.plan.* counters diverged at {workers} workers"
        );
    }
}

#[test]
fn sparql_responses_over_the_row_cap_fail_with_result_limit() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let platform = serve_platform();
    prepare(&platform, "capped");
    let all = sparql_request("capped", "SELECT ?s ?p ?o WHERE { ?s ?p ?o . }");

    // Under the default cap the full scan fits and succeeds.
    let (response, stop) = handle_line_with(&platform, &all, DEFAULT_MAX_ROWS);
    assert!(!stop);
    assert!(response.contains("\"ok\":true"), "uncapped: {response}");

    // With a one-row cap it fails with the stable code, not a truncation.
    let (response, stop) = handle_line_with(&platform, &all, 1);
    assert!(!stop);
    assert!(
        response.contains("\"ok\":false") && response.contains("\"code\":\"result-limit\""),
        "capped: {response}"
    );

    // An explicit LIMIT inside the query brings it back under the cap.
    let limited = sparql_request("capped", "SELECT ?s ?p ?o WHERE { ?s ?p ?o . } LIMIT 1");
    let (response, _) = handle_line_with(&platform, &limited, 1);
    assert!(response.contains("\"ok\":true"), "limited: {response}");
}
