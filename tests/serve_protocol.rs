//! End-to-end tests of the `weblab serve` protocol layer.
//!
//! The centrepiece is the **differential test**: while a background thread
//! keeps executing pipeline steps on a live execution (each committed call
//! publishing a new index epoch), TCP clients issue provenance queries and
//! every served answer must be byte-identical to the batch answer computed
//! on the graph *as of the epoch the response declares* — at 2 and at 4
//! worker threads.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;

use weblab::json::Json;
use weblab::platform::{Mapper, Platform, ProvQuery, QueryOpts, RankDirection};
use weblab::serve::{handle_line, reference_response, Server};
use weblab::workflow::generator::generate_corpus;
use weblab::workflow::services::{
    self, EntityExtractor, KeywordExtractor, LanguageExtractor, Normaliser, Summariser, Tokeniser,
};
use weblab::workflow::Service;

const PIPELINE: [&str; 6] = [
    "Normaliser",
    "LanguageExtractor",
    "Tokeniser",
    "EntityExtractor",
    "KeywordExtractor",
    "Summariser",
];

/// A platform with the test pipeline's services registered under their
/// default mapping rules — the same registration path `weblab serve` uses.
fn serve_platform() -> Arc<Platform> {
    let rules = services::default_rules();
    let platform = Platform::new(Mapper::native());
    let builtins: Vec<Box<dyn Service>> = vec![
        Box::new(Normaliser),
        Box::new(LanguageExtractor),
        Box::new(Tokeniser),
        Box::new(EntityExtractor),
        Box::new(KeywordExtractor),
        Box::new(Summariser),
    ];
    for svc in builtins {
        let texts: Vec<String> = rules
            .rules_for(svc.name())
            .iter()
            .map(|r| r.to_string())
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        platform.register_service(Arc::from(svc), &refs).unwrap();
    }
    Arc::new(platform)
}

fn request(pairs: Vec<(&str, Json)>) -> String {
    Json::obj(pairs).to_string()
}

fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(response.ends_with('\n'), "response not newline-terminated");
    response.trim_end().to_string()
}

fn connect(addr: &std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

/// The operand fields of a [`ProvQuery`] as request members.
fn query_fields(q: &ProvQuery) -> Vec<(&'static str, Json)> {
    match q {
        ProvQuery::Why { uri } | ProvQuery::ImpactedBy { uri } => {
            vec![("uri", Json::str(uri.as_str()))]
        }
        ProvQuery::Lineage { uri, depth } => vec![
            ("uri", Json::str(uri.as_str())),
            ("depth", Json::num(*depth as u64)),
        ],
        ProvQuery::CommonOrigins { a, b } => vec![
            ("a", Json::str(a.as_str())),
            ("b", Json::str(b.as_str())),
        ],
        ProvQuery::Sparql { query } => vec![("query", Json::str(query.as_str()))],
        ProvQuery::Rank { uris, direction, opts, weights } => {
            let mut pairs = vec![
                (
                    "uris",
                    Json::Arr(uris.iter().map(|u| Json::str(u.as_str())).collect()),
                ),
                ("direction", Json::str(direction.as_str())),
            ];
            if opts.limit != 0 {
                pairs.push(("limit", Json::num(opts.limit as u64)));
            }
            if opts.budget != 0 {
                pairs.push(("budget", Json::num(opts.budget as u64)));
            }
            if opts.decay_micro != 0 {
                pairs.push(("decay", Json::Num(f64::from(opts.decay_micro) / 1e6)));
            }
            if !weights.is_empty() {
                pairs.push((
                    "weights",
                    Json::Obj(
                        weights
                            .iter()
                            .map(|(s, w)| (s.clone(), Json::Num(f64::from(*w) / 1e6)))
                            .collect(),
                    ),
                ));
            }
            pairs
        }
        ProvQuery::Summary { uri } => match uri {
            Some(u) => vec![("uri", Json::str(u.as_str()))],
            None => vec![],
        },
    }
}

/// The wire request for a [`ProvQuery`] against `exec`.
fn query_request(exec: &str, q: &ProvQuery) -> String {
    let mut pairs = vec![("op", Json::str(q.op())), ("exec", Json::str(exec))];
    pairs.extend(query_fields(q));
    request(pairs)
}

/// A `batch` request carrying every query as a sub-request (sub-requests
/// inherit the batch's `exec`).
fn batch_request(exec: &str, queries: &[ProvQuery]) -> String {
    let subs: Vec<Json> = queries
        .iter()
        .map(|q| {
            let mut pairs = vec![("op", Json::str(q.op()))];
            pairs.extend(query_fields(q));
            Json::obj(pairs)
        })
        .collect();
    request(vec![
        ("op", Json::str("batch")),
        ("exec", Json::str(exec)),
        ("requests", Json::Arr(subs)),
    ])
}

/// Queries covering every op, targeting URIs that exist in the graph.
fn query_mix(uris: &[String]) -> Vec<ProvQuery> {
    let mut queries = Vec::new();
    for uri in uris {
        queries.push(ProvQuery::Why { uri: uri.clone() });
        queries.push(ProvQuery::Lineage {
            uri: uri.clone(),
            depth: 2,
        });
        queries.push(ProvQuery::ImpactedBy { uri: uri.clone() });
    }
    if uris.len() >= 2 {
        queries.push(ProvQuery::CommonOrigins {
            a: uris[0].clone(),
            b: uris[1].clone(),
        });
    }
    queries.push(ProvQuery::Sparql {
        query: "PREFIX prov: <http://www.w3.org/ns/prov#> \
                SELECT ?d ?s WHERE { ?d prov:wasDerivedFrom ?s . }"
            .to_string(),
    });
    queries.push(ProvQuery::Rank {
        uris: uris.to_vec(),
        direction: RankDirection::Up,
        opts: QueryOpts { limit: 10, budget: 16, decay_micro: 250_000 },
        weights: vec![("Normaliser".to_string(), 500_000)],
    });
    queries.push(ProvQuery::Summary {
        uri: uris.first().cloned(),
    });
    queries
}

#[test]
fn served_answers_match_batch_at_the_same_epoch_while_ingesting() {
    for workers in [2usize, 4] {
        let platform = serve_platform();
        let exec_id = "live-exec";
        {
            let exec = platform.execution(exec_id);
            exec.ingest(generate_corpus(42, 3, 8));
            exec.enable_live();
            // warm-up step so the graph has resources to query
            exec.execute(&["Normaliser"]).unwrap();
        }
        let uris: Vec<String> = {
            let snap = platform.execution(exec_id).snapshot().unwrap();
            snap.graph
                .sources
                .iter()
                .map(|s| s.uri.clone())
                .take(4)
                .collect()
        };
        assert!(uris.len() >= 2, "corpus produced too few resources");
        let queries = query_mix(&uris);

        let server = Server::bind(Arc::clone(&platform), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let server_thread = thread::spawn(move || server.run(workers));

        // live ingestion: each committed call publishes a new epoch while
        // clients are mid-query. The ingester keeps going until the client
        // has bracketed at least one served answer mid-run, so the overlap
        // is guaranteed rather than a race against scheduler timing.
        let live_matches = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let ingest_platform = Arc::clone(&platform);
        let ingester = thread::spawn({
            let live_matches = Arc::clone(&live_matches);
            move || {
                let exec = ingest_platform.execution(exec_id);
                for round in 0..100 {
                    exec.execute(&PIPELINE).unwrap();
                    if round >= 2 && live_matches.load(std::sync::atomic::Ordering::Relaxed) > 0
                    {
                        break;
                    }
                }
            }
        });

        let (mut stream, mut reader) = connect(&addr);
        while !ingester.is_finished() {
            for q in &queries {
                let exec = platform.execution(exec_id);
                let before = exec.snapshot().unwrap();
                let response = roundtrip(&mut stream, &mut reader, &query_request(exec_id, q));
                let after = exec.snapshot().unwrap();
                let parsed = Json::parse(&response).unwrap();
                assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
                let epoch = parsed.get("epoch").and_then(Json::as_u64).unwrap();
                // epoch-bracketing: if the response's epoch matches a
                // snapshot we hold, the bytes must match the batch answer
                // computed on that snapshot's graph
                let snap = if epoch == before.epoch {
                    Some(before)
                } else if epoch == after.epoch {
                    Some(after)
                } else {
                    None
                };
                if let Some(snap) = snap {
                    assert_eq!(
                        response,
                        reference_response(&snap, q).unwrap(),
                        "served {op} answer diverged from batch at epoch {epoch} \
                         ({workers} workers)",
                        op = q.op(),
                    );
                    live_matches.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
        ingester.join().unwrap();

        // quiescent: no publisher is running, so every answer must sit at
        // the current epoch and compare exactly
        let settled = platform.execution(exec_id).snapshot().unwrap();
        for q in &queries {
            let response = roundtrip(&mut stream, &mut reader, &query_request(exec_id, q));
            assert_eq!(
                response,
                reference_response(&settled, q).unwrap(),
                "quiescent {} answer diverged ({workers} workers)",
                q.op(),
            );
        }
        assert!(
            live_matches.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "expected at least one live-bracketed comparison mid-ingestion"
        );

        let bye = roundtrip(&mut stream, &mut reader, &request(vec![("op", Json::str("shutdown"))]));
        assert!(bye.contains("\"stopping\":true"));
        drop(stream);
        server_thread.join().unwrap().unwrap();
    }
}

/// The differential test for the `batch` op: under live ingestion, every
/// batch must answer all its sub-requests at **one** epoch (no torn
/// batch), and each sub-response must be byte-identical to the same
/// sub-request issued serially at that pinned epoch — at 2 and 4 workers.
#[test]
fn batch_answers_share_one_epoch_and_match_serial_responses() {
    for workers in [2usize, 4] {
        let platform = serve_platform();
        let exec_id = "batch-exec";
        {
            let exec = platform.execution(exec_id);
            exec.ingest(generate_corpus(7, 3, 8));
            exec.enable_live();
            exec.execute(&["Normaliser"]).unwrap();
        }
        let uris: Vec<String> = {
            let snap = platform.execution(exec_id).snapshot().unwrap();
            snap.graph
                .sources
                .iter()
                .map(|s| s.uri.clone())
                .take(4)
                .collect()
        };
        let queries = query_mix(&uris);

        let server = Server::bind(Arc::clone(&platform), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let server_thread = thread::spawn(move || server.run(workers));

        let live_matches = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let ingest_platform = Arc::clone(&platform);
        let ingester = thread::spawn({
            let live_matches = Arc::clone(&live_matches);
            move || {
                let exec = ingest_platform.execution(exec_id);
                for round in 0..100 {
                    exec.execute(&PIPELINE).unwrap();
                    if round >= 2 && live_matches.load(std::sync::atomic::Ordering::Relaxed) > 0
                    {
                        break;
                    }
                }
            }
        });

        let (mut stream, mut reader) = connect(&addr);
        while !ingester.is_finished() {
            let exec = platform.execution(exec_id);
            let before = exec.snapshot().unwrap();
            let response = roundtrip(&mut stream, &mut reader, &batch_request(exec_id, &queries));
            let after = exec.snapshot().unwrap();
            let parsed = Json::parse(&response).unwrap();
            assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
            let epoch = parsed.get("epoch").and_then(Json::as_u64).unwrap();
            let subs = parsed
                .get("result")
                .and_then(Json::as_array)
                .expect("batch result must be an array");
            assert_eq!(subs.len(), queries.len());
            // the whole batch shares one atomic epoch — never torn across
            // a concurrent publish
            for sub in subs {
                assert_eq!(sub.get("ok").and_then(Json::as_bool), Some(true));
                assert_eq!(
                    sub.get("epoch").and_then(Json::as_u64),
                    Some(epoch),
                    "torn batch: sub answered at a different epoch ({workers} workers)"
                );
            }
            // epoch-bracketing: when the batch's epoch matches a snapshot
            // we hold, every sub must be byte-identical to the serial
            // answer computed on that snapshot
            let snap = if epoch == before.epoch {
                Some(before)
            } else if epoch == after.epoch {
                Some(after)
            } else {
                None
            };
            if let Some(snap) = snap {
                for (sub, q) in subs.iter().zip(&queries) {
                    assert_eq!(
                        sub.to_string(),
                        reference_response(&snap, q).unwrap(),
                        "batch {} sub diverged from serial at epoch {epoch} \
                         ({workers} workers)",
                        q.op(),
                    );
                }
                live_matches.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        ingester.join().unwrap();

        // quiescent: issue the batch, then the same sub-requests serially
        // over the same connection — the wire bytes must match exactly
        let response = roundtrip(&mut stream, &mut reader, &batch_request(exec_id, &queries));
        let parsed = Json::parse(&response).unwrap();
        let subs = parsed.get("result").and_then(Json::as_array).unwrap();
        for (sub, q) in subs.iter().zip(&queries) {
            let serial = roundtrip(&mut stream, &mut reader, &query_request(exec_id, q));
            assert_eq!(
                sub.to_string(),
                serial,
                "quiescent batch {} sub != serial response ({workers} workers)",
                q.op(),
            );
        }
        assert!(
            live_matches.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "expected at least one live-bracketed batch comparison"
        );

        // sub-request errors carry their own stable code plus the batch's
        // epoch; a mismatched sub exec is rejected without touching it
        let bad = request(vec![
            ("op", Json::str("batch")),
            ("exec", Json::str(exec_id)),
            (
                "requests",
                Json::Arr(vec![
                    Json::obj(vec![("op", Json::str("why")), ("uri", Json::str(&uris[0]))]),
                    Json::obj(vec![("op", Json::str("why"))]), // missing uri
                    Json::obj(vec![
                        ("op", Json::str("why")),
                        ("exec", Json::str("someone-else")),
                        ("uri", Json::str(&uris[0])),
                    ]),
                    Json::obj(vec![("op", Json::str("shutdown"))]), // not batchable
                ]),
            ),
        ]);
        let parsed = Json::parse(&roundtrip(&mut stream, &mut reader, &bad)).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
        let epoch = parsed.get("epoch").and_then(Json::as_u64).unwrap();
        let subs = parsed.get("result").and_then(Json::as_array).unwrap();
        assert_eq!(subs[0].get("ok").and_then(Json::as_bool), Some(true));
        for failing in &subs[1..] {
            assert_eq!(failing.get("ok").and_then(Json::as_bool), Some(false));
            assert_eq!(
                failing.get("code").and_then(Json::as_str),
                Some("protocol")
            );
            assert_eq!(failing.get("epoch").and_then(Json::as_u64), Some(epoch));
        }

        // an oversized batch fails whole with the stable batch-limit code
        let subs: Vec<Json> = (0..weblab::serve::DEFAULT_MAX_BATCH + 1)
            .map(|_| Json::obj(vec![("op", Json::str("why")), ("uri", Json::str(&uris[0]))]))
            .collect();
        let oversized = request(vec![
            ("op", Json::str("batch")),
            ("exec", Json::str(exec_id)),
            ("requests", Json::Arr(subs)),
        ]);
        let parsed = Json::parse(&roundtrip(&mut stream, &mut reader, &oversized)).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            parsed.get("code").and_then(Json::as_str),
            Some("batch-limit")
        );

        let bye = roundtrip(&mut stream, &mut reader, &request(vec![("op", Json::str("shutdown"))]));
        assert!(bye.contains("\"stopping\":true"));
        drop(stream);
        server_thread.join().unwrap().unwrap();
    }
}

/// Any request may carry an `id`; it comes back verbatim as the first
/// member of the response — success or error.
#[test]
fn request_ids_echo_back_first() {
    let platform = serve_platform();
    let (response, _) = handle_line(&platform, "{\"id\":42,\"op\":\"status\"}");
    assert!(
        response.starts_with("{\"id\":42,\"ok\":true,"),
        "id must lead the success response: {response}"
    );
    let (response, _) = handle_line(&platform, "{\"id\":\"q-1\",\"op\":\"transmogrify\"}");
    assert!(
        response.starts_with("{\"id\":\"q-1\",\"ok\":false,"),
        "id must lead the error response: {response}"
    );
}

#[test]
fn tcp_ingest_round_trip_executes_the_pipeline() {
    let platform = serve_platform();
    let server = Server::bind(Arc::clone(&platform), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = thread::spawn(move || server.run(2));

    let (mut stream, mut reader) = connect(&addr);
    let xml = "<Resource wl:id=\"weblab://doc/t\">\
               <NativeContent wl:id=\"weblab://src/0\" wl:s=\"Source\" wl:t=\"0\" mime=\"text/plain\">\
               hello serve world and the language of peace</NativeContent></Resource>";
    let ingest = request(vec![
        ("op", Json::str("ingest")),
        ("exec", Json::str("tcp-exec")),
        ("xml", Json::str(xml)),
        ("live", Json::Bool(true)),
        (
            "pipeline",
            Json::Arr(vec![Json::str("Normaliser"), Json::str("Tokeniser")]),
        ),
    ]);
    let response = Json::parse(&roundtrip(&mut stream, &mut reader, &ingest)).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let result = response.get("result").unwrap();
    assert_eq!(result.get("calls").and_then(Json::as_u64), Some(2));
    assert!(result.get("links").and_then(Json::as_u64).unwrap() > 0);

    // status shows the execution as live
    let status = Json::parse(&roundtrip(
        &mut stream,
        &mut reader,
        &request(vec![("op", Json::str("status"))]),
    ))
    .unwrap();
    let executions = status
        .get("result")
        .and_then(|r| r.get("executions"))
        .and_then(Json::as_array)
        .unwrap();
    assert!(executions.iter().any(|e| {
        e.get("id").and_then(Json::as_str) == Some("tcp-exec")
            && e.get("live").and_then(Json::as_bool) == Some(true)
    }));

    // a why query over the just-ingested execution answers at some epoch
    let snap = platform.execution("tcp-exec").snapshot().unwrap();
    let uri = snap.graph.sources.first().map(|s| s.uri.clone()).unwrap();
    let why = ProvQuery::Why { uri };
    let served = roundtrip(&mut stream, &mut reader, &query_request("tcp-exec", &why));
    assert_eq!(served, reference_response(&snap, &why).unwrap());

    let bye = roundtrip(&mut stream, &mut reader, &request(vec![("op", Json::str("shutdown"))]));
    assert!(bye.contains("\"stopping\":true"));
    drop((stream, reader));
    server_thread.join().unwrap().unwrap();
}

#[test]
fn protocol_errors_carry_the_stable_codes() {
    let platform = serve_platform();
    let cases = [
        ("this is not json", "protocol"),
        ("{\"op\":\"transmogrify\"}", "protocol"),
        ("{\"op\":\"why\",\"exec\":\"e\"}", "protocol"), // missing uri
        ("{\"op\":\"why\",\"exec\":\"nope\",\"uri\":\"r\"}", "unknown-execution"),
        ("{\"op\":\"ingest\",\"exec\":\"e\",\"xml\":\"<broken\"}", "xml"),
        (
            "{\"op\":\"ingest\",\"exec\":\"e2\",\"xml\":\"<R><NativeContent id=\\\"n\\\">x</NativeContent></R>\",\"pipeline\":[\"NoSuchService\"]}",
            "unknown-service",
        ),
    ];
    for (line, code) in cases {
        let (response, stop) = handle_line(&platform, line);
        assert!(!stop);
        let parsed = Json::parse(&response).unwrap();
        assert_eq!(
            parsed.get("ok").and_then(Json::as_bool),
            Some(false),
            "{line} should fail"
        );
        assert_eq!(
            parsed.get("code").and_then(Json::as_str),
            Some(code),
            "wrong code for {line}: {response}"
        );
    }
    // sparql parse failures surface the shared "sparql" code
    let (_, _) = handle_line(
        &platform,
        "{\"op\":\"ingest\",\"exec\":\"s\",\"xml\":\"<R><NativeContent id=\\\"n\\\">x</NativeContent></R>\"}",
    );
    let (response, _) = handle_line(
        &platform,
        "{\"op\":\"sparql\",\"exec\":\"s\",\"query\":\"SELEKT nonsense\"}",
    );
    let parsed = Json::parse(&response).unwrap();
    assert_eq!(parsed.get("code").and_then(Json::as_str), Some("sparql"));
}

#[test]
fn shutdown_is_flagged_and_sources_only_snapshots_serve() {
    let platform = serve_platform();
    let (_, stop) = handle_line(&platform, "{\"op\":\"shutdown\"}");
    assert!(stop, "shutdown must flag the server loop to stop");

    // ingested but never executed: queries answer on a sources-only graph
    let (response, _) = handle_line(
        &platform,
        "{\"op\":\"ingest\",\"exec\":\"fresh\",\"xml\":\"<R wl:id=\\\"weblab://doc/f\\\"><NativeContent wl:id=\\\"weblab://src/9\\\" wl:s=\\\"Source\\\" wl:t=\\\"0\\\">plain</NativeContent></R>\"}",
    );
    let parsed = Json::parse(&response).unwrap();
    assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        parsed
            .get("result")
            .and_then(|r| r.get("calls"))
            .and_then(Json::as_u64),
        Some(0)
    );
    let snap = platform.execution("fresh").snapshot().unwrap();
    let uri = snap.graph.sources.first().map(|s| s.uri.clone()).unwrap();
    let why = ProvQuery::Why { uri };
    let (served, _) = handle_line(&platform, &query_request("fresh", &why));
    assert_eq!(served, reference_response(&snap, &why).unwrap());
}
