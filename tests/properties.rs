//! Property-based tests for the core invariants of the reproduction.
//!
//! The central theorem of Section 4 — evaluating temporally rewritten rules
//! on the final document is equivalent to replaying Definition 8/9 over the
//! intermediate states — is checked on randomised workflows, along with the
//! algebraic and structural invariants of the substrate crates.

use proptest::prelude::*;

use weblab::prov::{
    infer_provenance, join_tables, EngineOptions, InheritMode, JoinAlgorithm,
    Strategy as ProvStrategy,
};
use weblab::workflow::generator::synthetic_workload;
use weblab::workflow::services::{self, LanguageExtractor, Normaliser, Translator};
use weblab::workflow::{Orchestrator, Workflow};
use weblab::xml::{
    diff_documents, is_contained, parse_document, to_xml_string, CallLabel, Document,
};
use weblab::xpath::{eval_pattern, parse_pattern, BindingRow, BindingTable, Value};
use weblab::xquery::{infer_provenance_xquery, XQueryStrategyOptions};

// ---------------------------------------------------------------------
// Random document builders
// ---------------------------------------------------------------------

/// A recipe for building a random append-only document: a sequence of
/// (parent choice, tag index, make-resource?, set-attr?) operations.
fn doc_ops() -> impl Strategy<Value = Vec<(u8, u8, bool, bool)>> {
    prop::collection::vec((any::<u8>(), 0u8..5, any::<bool>(), any::<bool>()), 1..40)
}

const TAGS: [&str; 5] = ["A", "B", "C", "T", "L"];

/// A historically valid mark at `nodes` nodes (resources are registered at
/// creation time in these builders, so the visible registrations are
/// exactly those of earlier nodes).
fn mark_at(doc: &Document, nodes: usize) -> weblab::xml::StateMark {
    let resources = doc
        .resource_nodes()
        .iter()
        .filter(|n| n.index() < nodes)
        .count();
    weblab::xml::StateMark::from_counts(nodes, resources)
}

fn build_doc(ops: &[(u8, u8, bool, bool)]) -> Document {
    let mut doc = Document::new("Root");
    let root = doc.root();
    doc.register_resource(root, "root", None).unwrap();
    let mut elements = vec![root];
    let mut time = 1u64;
    for (i, &(parent, tag, resource, attr)) in ops.iter().enumerate() {
        let p = elements[parent as usize % elements.len()];
        let n = doc.append_element(p, TAGS[tag as usize]).unwrap();
        if attr {
            doc.set_attr(n, "k", format!("v{}", i % 7)).unwrap();
        }
        if resource {
            doc.register_resource(n, format!("r{i}"), Some(CallLabel::new("Gen", time)))
                .unwrap();
            time += 1;
        }
        elements.push(n);
    }
    doc
}

// ---------------------------------------------------------------------
// Strategy equivalence (the Section 4 theorem)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn strategies_agree_on_random_synthetic_workflows(
        seed in 0u64..1000,
        n_calls in 1usize..7,
        fanout in 1usize..4,
    ) {
        let (mut doc, wf, rules) = synthetic_workload(seed, n_calls, fanout, 0);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let mut all = Vec::new();
        for strategy in [
            ProvStrategy::StateReplay { materialize: false },
            ProvStrategy::StateReplay { materialize: true },
            ProvStrategy::TemporalRewrite,
            ProvStrategy::GroupedSinglePass,
        ] {
            let g = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions {
                strategy,
                ..Default::default()
            });
            all.push(g.links);
        }
        // compiled XQuery agrees too (the rule set is position-free)
        let gx = infer_provenance_xquery(
            &doc, &outcome.trace, &rules, &XQueryStrategyOptions::default()).unwrap();
        all.push(gx.links);
        for l in &all[1..] {
            prop_assert_eq!(&all[0], l);
        }
    }

    #[test]
    fn xquery_options_do_not_change_results(
        seed in 0u64..400,
        n_calls in 1usize..5,
        fanout in 1usize..4,
        fuse in proptest::bool::ANY,
        eager in proptest::bool::ANY,
    ) {
        let (mut doc, wf, rules) = synthetic_workload(seed, n_calls, fanout, 0);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let baseline = infer_provenance_xquery(
            &doc, &outcome.trace, &rules, &XQueryStrategyOptions::default()).unwrap();
        let variant = infer_provenance_xquery(
            &doc, &outcome.trace, &rules,
            &XQueryStrategyOptions { fuse_id_joins: fuse, eager_where: eager }).unwrap();
        prop_assert_eq!(baseline.links, variant.links);
    }

    #[test]
    fn index_does_not_change_results(
        seed in 0u64..500,
        n_calls in 1usize..6,
        fanout in 1usize..5,
    ) {
        let (mut doc, wf, rules) = synthetic_workload(seed, n_calls, fanout, 0);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        for strategy in [ProvStrategy::TemporalRewrite, ProvStrategy::GroupedSinglePass,
                         ProvStrategy::StateReplay { materialize: false }] {
            let with = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions {
                strategy, use_index: true, ..Default::default()
            });
            let without = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions {
                strategy, use_index: false, ..Default::default()
            });
            prop_assert_eq!(with.links, without.links);
        }
    }

    #[test]
    fn inherit_modes_agree_on_random_pipelines(
        seed in 0u64..500,
        n_native in 1usize..4,
    ) {
        let mut doc = weblab::workflow::generator::generate_corpus(seed, n_native, 25);
        let wf = Workflow::new()
            .then(Normaliser)
            .then(LanguageExtractor)
            .then(Translator::default())
            .then(LanguageExtractor);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let rules = services::default_rules();
        let base = EngineOptions {
            inherit: InheritMode::PatternRewrite,
            ..Default::default()
        };
        let g1 = infer_provenance(&doc, &outcome.trace, &rules, &base);
        let g2 = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions {
            inherit: InheritMode::GraphPropagation,
            ..base
        });
        prop_assert_eq!(g1.links, g2.links);
    }

    #[test]
    fn eager_orchestration_matches_posthoc(
        seed in 0u64..500,
        n_calls in 1usize..6,
        fanout in 1usize..4,
    ) {
        let (mut doc, wf, rules) = synthetic_workload(seed, n_calls, fanout, 0);
        let outcome = Orchestrator::eager(rules.clone()).execute(&wf, &mut doc).unwrap();
        let posthoc = infer_provenance(&doc, &outcome.trace, &rules, &EngineOptions::default());
        prop_assert_eq!(outcome.eager_links, posthoc.links);
    }

    // -----------------------------------------------------------------
    // XML substrate invariants
    // -----------------------------------------------------------------

    #[test]
    fn serialisation_round_trips(ops in doc_ops()) {
        let doc = build_doc(&ops);
        let xml = to_xml_string(&doc.view());
        let back = parse_document(&xml).unwrap();
        prop_assert_eq!(to_xml_string(&back.view()), xml);
        // resources survive the round trip
        prop_assert_eq!(back.resource_nodes().len(), doc.resource_nodes().len());
    }

    #[test]
    fn state_views_form_a_containment_chain(ops in doc_ops()) {
        let mut doc = Document::new("Root");
        let root = doc.root();
        let mut elements = vec![root];
        let mut marks = vec![doc.mark()];
        for &(parent, tag, resource, _) in &ops {
            let p = elements[parent as usize % elements.len()];
            let n = doc.append_element(p, TAGS[tag as usize]).unwrap();
            if resource {
                doc.register_resource(n, format!("r{}", elements.len()), None).unwrap();
            }
            elements.push(n);
            marks.push(doc.mark());
        }
        // structural check agrees with the by-construction marks on
        // materialised copies (exercising the general algorithm)
        let first = doc.materialize_state(marks[0]);
        let mid = doc.materialize_state(marks[marks.len() / 2]);
        let last = doc.materialize_state(*marks.last().unwrap());
        prop_assert!(is_contained(&first.view(), &mid.view()));
        prop_assert!(is_contained(&mid.view(), &last.view()));
        prop_assert!(is_contained(&first.view(), &last.view())); // transitivity
        prop_assert!(is_contained(&last.view(), &last.view())); // reflexivity
    }

    #[test]
    fn diff_identifies_exactly_the_appended_nodes(ops in doc_ops()) {
        let doc = build_doc(&ops);
        let half_nodes = (doc.node_count() / 2).max(1);
        // find a mark with node count ≈ half by replaying
        let old = doc.materialize_state(mark_at(&doc, half_nodes));
        let res = diff_documents(&old.view(), &doc.view()).unwrap();
        prop_assert_eq!(res.new_nodes.len(), doc.node_count() - half_nodes);
        // every reported fragment root's parent existed before
        for &r in &res.fragment_roots {
            if let Some(p) = doc.view().parent(r) {
                prop_assert!(p.index() < half_nodes);
            }
        }
    }

    // -----------------------------------------------------------------
    // Algebra invariants
    // -----------------------------------------------------------------

    #[test]
    fn hash_join_equals_nested_loop(
        src_rows in prop::collection::vec((0usize..50, 0i64..6, 0i64..6), 0..30),
        tgt_rows in prop::collection::vec((50usize..100, 0i64..6), 0..30),
    ) {
        let mut src = BindingTable::with_columns(vec!["x".into(), "y".into()]);
        for (n, x, y) in src_rows {
            src.rows.push(BindingRow {
                node: weblab::xml::NodeId::from_index(n),
                uri: format!("s{n}"),
                values: vec![Value::int(x), Value::int(y)],
            });
        }
        let mut tgt = BindingTable::with_columns(vec!["x".into()]);
        for (n, x) in tgt_rows {
            tgt.rows.push(BindingRow {
                node: weblab::xml::NodeId::from_index(n),
                uri: format!("t{n}"),
                values: vec![Value::int(x)],
            });
        }
        prop_assert_eq!(
            join_tables(&src, &tgt, JoinAlgorithm::Hash),
            join_tables(&src, &tgt, JoinAlgorithm::NestedLoop)
        );
    }

    // -----------------------------------------------------------------
    // Pattern language invariants
    // -----------------------------------------------------------------

    #[test]
    fn pattern_display_parse_fixpoint(
        descs in prop::collection::vec(any::<bool>(), 1..4),
        tags in prop::collection::vec(0usize..5, 1..4),
        bind in any::<bool>(),
    ) {
        let n = descs.len().min(tags.len());
        let mut text = String::new();
        for i in 0..n {
            text.push_str(if descs[i] { "//" } else { "/" });
            text.push_str(TAGS[tags[i] % TAGS.len()]);
        }
        if bind {
            text.push_str("[$v := @k]");
        }
        let p = parse_pattern(&text).unwrap();
        let printed = p.to_string();
        let reparsed = parse_pattern(&printed).unwrap();
        prop_assert_eq!(p, reparsed);
    }

    /// The delta law behind live maintenance (DESIGN.md § 9): links derived
    /// for calls `0..n` decompose at *any* split point `k` into the links
    /// for `0..k` (inferred against the final document, as a live
    /// maintainer does) plus the links for `k..n` — with no duplicates
    /// across the two deltas.
    #[test]
    fn incremental_deltas_compose_at_any_split(
        seed in 0u64..400,
        n_calls in 1usize..6,
        fanout in 1usize..4,
        split in 0usize..64,
        strategy_idx in 0usize..3,
        rewrite in proptest::bool::ANY,
    ) {
        let (mut doc, wf, rules) = synthetic_workload(seed, n_calls, fanout, 0);
        let outcome = Orchestrator::new().execute(&wf, &mut doc).unwrap();
        let n = outcome.trace.calls.len();
        let k = split % (n + 1);
        let opts = EngineOptions {
            strategy: [
                ProvStrategy::StateReplay { materialize: false },
                ProvStrategy::TemporalRewrite,
                ProvStrategy::GroupedSinglePass,
            ][strategy_idx],
            inherit: if rewrite { InheritMode::PatternRewrite } else { InheritMode::Off },
            ..Default::default()
        };
        let full = weblab::prov::infer_links_since(&doc, &outcome.trace, 0, &rules, &opts);
        let head_trace = weblab::prov::ExecutionTrace {
            calls: outcome.trace.calls[..k].to_vec(),
        };
        let head = weblab::prov::infer_links_since(&doc, &head_trace, 0, &rules, &opts);
        let tail = weblab::prov::infer_links_since(&doc, &outcome.trace, k, &rules, &opts);
        // disjoint deltas: nothing is derived twice
        prop_assert_eq!(head.len() + tail.len(), full.len());
        let mut union = head;
        union.extend(tail);
        union.sort();
        let mut expected = full;
        expected.sort();
        prop_assert_eq!(union, expected);
    }

    #[test]
    fn evaluation_is_deterministic_and_state_monotone(ops in doc_ops()) {
        let doc = build_doc(&ops);
        let p = parse_pattern("//A[$x := @k]").unwrap();
        let t1 = eval_pattern(&p, &doc.view());
        let t2 = eval_pattern(&p, &doc.view());
        prop_assert_eq!(&t1.rows, &t2.rows);
        // a pattern without temporal predicates only gains rows as the
        // document grows
        let half = mark_at(&doc, (doc.node_count() / 2).max(1));
        let t_half = eval_pattern(&p, &doc.view_at(half));
        prop_assert!(t_half.rows.len() <= t1.rows.len());
        for r in &t_half.rows {
            prop_assert!(t1.rows.contains(r));
        }
    }
}
