//! Differential tests: the cardinality-driven planner vs the seed evaluator.
//!
//! `weblab_bench::seedeval::seed_select` is a frozen copy of the SPARQL-lite
//! evaluation strategy that shipped before the columnar engine. Both paths
//! promise the same output contract — projected, deduplicated, term-sorted
//! solutions, then `ORDER BY` (with a total-order fallback) and `LIMIT` — so
//! on any store and any query the two must return byte-identical results.
//!
//! Randomized stores draw from small term pools so joins, repeated
//! variables, and filters actually connect; queries mix constants and
//! variables per component and optionally add filters, DISTINCT, ORDER BY
//! and LIMIT. Deterministic edge cases cover the corners random generation
//! is unlikely to hit every run.

use proptest::prelude::*;

use weblab::rdf::{
    parse_select, select, Filter, PatTerm, SelectQuery, Term, Triple, TripleStore,
};
use weblab_bench::seedeval::seed_select;

// ---------------------------------------------------------------------
// Pools and builders
// ---------------------------------------------------------------------

const N_SUBJECTS: u8 = 6;
const N_PREDS: u8 = 4;
const N_OBJECTS: u8 = 5;
const VARS: [&str; 4] = ["x", "y", "z", "w"];

fn subject(i: u8) -> Term {
    Term::iri(format!("s{}", i % N_SUBJECTS))
}

fn predicate(i: u8) -> Term {
    Term::iri(format!("p{}", i % N_PREDS))
}

/// Objects overlap the subject pool (so chains join), plus literals and
/// integers so every term kind flows through the dictionary.
fn object(i: u8) -> Term {
    match i % 10 {
        0..=4 => subject(i),
        5 | 6 => Term::lit(format!("o{}", i % N_OBJECTS)),
        7 => Term::int((i % 3) as i64),
        // Terms absent from any generated triple: exercises dead-plan
        // handling when they appear as query constants.
        _ => Term::iri(format!("missing{}", i % 2)),
    }
}

fn build_store(triples: &[(u8, u8, u8)]) -> TripleStore {
    let mut store = TripleStore::new();
    store.extend(
        triples
            .iter()
            .map(|&(s, p, o)| Triple::new(subject(s), predicate(p), object(o))),
    );
    store
}

/// One component of a pattern: low choices are variables, the rest
/// constants from the matching pool.
fn pat_term(choice: u8, idx: u8, pool: fn(u8) -> Term) -> PatTerm {
    if choice % 7 < 3 {
        PatTerm::Var(VARS[(choice % 4) as usize].to_string())
    } else {
        PatTerm::Const(pool(idx))
    }
}

type PatSpec = (u8, u8, u8, u8, u8, u8);
type FilterSpec = (u8, u8, u8, bool);

fn build_query(
    pats: &[PatSpec],
    filters: &[FilterSpec],
    distinct: bool,
    project: u8,
    order: u8,
    limit: u8,
) -> SelectQuery {
    let patterns = pats
        .iter()
        .map(|&(sc, si, pc, pi, oc, oi)| weblab::rdf::TriplePattern {
            s: pat_term(sc, si, subject),
            p: pat_term(pc, pi, predicate),
            o: pat_term(oc, oi, object),
        })
        .collect();
    // Filters compare a variable (possibly one not bound by any pattern)
    // against either another variable or a constant from the object pool.
    let filters = filters
        .iter()
        .map(|&(l, r, ri, equal)| Filter {
            left: PatTerm::Var(VARS[(l % 4) as usize].to_string()),
            right: if r % 3 == 0 {
                PatTerm::Var(VARS[(r % 4) as usize].to_string())
            } else {
                PatTerm::Const(object(ri))
            },
            equal,
        })
        .collect();
    // Projection: a (possibly empty → SELECT *) subset of the var pool.
    let vars: Vec<String> = VARS
        .iter()
        .enumerate()
        .filter(|(i, _)| project & (1 << i) != 0)
        .map(|(_, v)| v.to_string())
        .collect();
    let order_by: Vec<String> = VARS
        .iter()
        .enumerate()
        .filter(|(i, _)| order & (1 << i) != 0)
        .map(|(_, v)| v.to_string())
        .collect();
    let limit = if limit.is_multiple_of(4) {
        None
    } else {
        Some((limit % 7) as usize)
    };
    SelectQuery {
        vars,
        distinct,
        patterns,
        filters,
        order_by,
        limit,
    }
}

// ---------------------------------------------------------------------
// Randomized differential checks
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any BGP (1–4 patterns) over a random store: both evaluators agree.
    #[test]
    fn planner_matches_seed_on_random_bgps(
        triples in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..60),
        pats in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            1..4,
        ),
        project in any::<u8>(),
    ) {
        let store = build_store(&triples);
        let q = build_query(&pats, &[], false, project, 0, 0);
        prop_assert_eq!(select(&store, &q), seed_select(&store, &q));
    }

    /// Full query surface: filters, DISTINCT, ORDER BY, LIMIT.
    #[test]
    fn planner_matches_seed_with_modifiers(
        triples in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..60),
        pats in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            1..4,
        ),
        filters in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<bool>()), 0..3),
        distinct in any::<bool>(),
        project in any::<u8>(),
        order in any::<u8>(),
        limit in any::<u8>(),
    ) {
        let store = build_store(&triples);
        let q = build_query(&pats, &filters, distinct, project, order, limit);
        // DISTINCT is new in this engine; the oracle predates it. The
        // shared output contract already dedups projected rows, so DISTINCT
        // must be a no-op relative to the oracle and the comparison holds
        // for both values of the flag.
        prop_assert_eq!(select(&store, &q), seed_select(&store, &q));
    }

    /// Chain joins with repeated variables across patterns — the shape the
    /// planner reorders most aggressively.
    #[test]
    fn planner_matches_seed_on_chains(
        triples in prop::collection::vec((any::<u8>(), 0u8..2, any::<u8>()), 10..80),
        p1 in 0u8..4,
        p2 in 0u8..4,
        anchor in any::<u8>(),
    ) {
        let store = build_store(&triples);
        let q = SelectQuery {
            vars: vec!["x".into(), "z".into()],
            distinct: false,
            patterns: vec![
                weblab::rdf::TriplePattern {
                    s: PatTerm::Var("x".into()),
                    p: PatTerm::Const(predicate(p1)),
                    o: PatTerm::Var("y".into()),
                },
                weblab::rdf::TriplePattern {
                    s: PatTerm::Var("y".into()),
                    p: PatTerm::Const(predicate(p2)),
                    o: PatTerm::Var("z".into()),
                },
                weblab::rdf::TriplePattern {
                    s: PatTerm::Var("x".into()),
                    p: PatTerm::Var("q".into()),
                    o: PatTerm::Const(object(anchor)),
                },
            ],
            filters: vec![],
            order_by: vec!["z".into()],
            limit: Some(5),
        };
        prop_assert_eq!(select(&store, &q), seed_select(&store, &q));
    }

    /// Repeated variable inside a single pattern means column equality.
    #[test]
    fn planner_matches_seed_on_self_loops(
        triples in prop::collection::vec((any::<u8>(), any::<u8>(), 0u8..5), 0..60),
        p in 0u8..4,
    ) {
        let store = build_store(&triples);
        let q = SelectQuery {
            vars: vec![],
            distinct: false,
            patterns: vec![weblab::rdf::TriplePattern {
                s: PatTerm::Var("x".into()),
                p: PatTerm::Const(predicate(p)),
                o: PatTerm::Var("x".into()),
            }],
            filters: vec![],
            order_by: vec![],
            limit: None,
        };
        prop_assert_eq!(select(&store, &q), seed_select(&store, &q));
    }
}

// ---------------------------------------------------------------------
// Deterministic edge cases
// ---------------------------------------------------------------------

fn tiny_store() -> TripleStore {
    let mut store = TripleStore::new();
    store.extend([
        Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("b")),
        Triple::new(Term::iri("b"), Term::iri("p"), Term::iri("c")),
        Triple::new(Term::iri("a"), Term::iri("q"), Term::int(7)),
    ]);
    store
}

#[test]
fn empty_bgp_agrees() {
    let store = tiny_store();
    let q = parse_select("SELECT * WHERE { }").unwrap();
    assert_eq!(select(&store, &q), seed_select(&store, &q));
}

#[test]
fn missing_constant_agrees() {
    let store = tiny_store();
    let q = parse_select("SELECT ?x WHERE { ?x <nope> ?y . }").unwrap();
    assert_eq!(select(&store, &q), seed_select(&store, &q));
    assert!(select(&store, &q).is_empty());
}

#[test]
fn filter_on_unbound_variable_agrees() {
    let store = tiny_store();
    // ?v never appears in the BGP: the seed drops every solution because
    // resolve(?v) is None; the planner compiles the query to a dead plan.
    let q = parse_select("SELECT ?x WHERE { ?x <p> ?y . FILTER(?v = ?x) }").unwrap();
    assert_eq!(select(&store, &q), seed_select(&store, &q));
    assert!(select(&store, &q).is_empty());
}

#[test]
fn filter_against_absent_constant_agrees() {
    let store = tiny_store();
    let eq = parse_select("SELECT ?x WHERE { ?x <p> ?y . FILTER(?x = <ghost>) }").unwrap();
    let ne = parse_select("SELECT ?x WHERE { ?x <p> ?y . FILTER(?x != <ghost>) }").unwrap();
    assert_eq!(select(&store, &eq), seed_select(&store, &eq));
    assert_eq!(select(&store, &ne), seed_select(&store, &ne));
    assert!(select(&store, &eq).is_empty());
    assert_eq!(select(&store, &ne).len(), 2);
}

#[test]
fn query_on_empty_store_agrees() {
    let store = TripleStore::new();
    let q = parse_select("SELECT * WHERE { ?s ?p ?o . }").unwrap();
    assert_eq!(select(&store, &q), seed_select(&store, &q));
}

#[test]
fn order_by_with_limit_agrees() {
    let store = tiny_store();
    let q = parse_select("SELECT ?s ?o WHERE { ?s ?p ?o . } ORDER BY ?o LIMIT 2").unwrap();
    assert_eq!(select(&store, &q), seed_select(&store, &q));
    assert_eq!(select(&store, &q).len(), 2);
}
