//! Edge cases for the XML substrate: deep nesting, unicode, entity-heavy
//! content, metadata suppression, and state-view corner cases.

use weblab::xml::{
    parse_document, to_xml_string, write_with, CallLabel, Document, XmlWriteOptions,
};

#[test]
fn deeply_nested_documents_round_trip() {
    // The parser and serialiser are recursive-descent; ~300 levels is well
    // within the default test-thread stack and far beyond real WebLab
    // payloads (the paper's documents nest a handful of levels).
    const DEPTH: usize = 300;
    let mut doc = Document::new("d0");
    let mut cur = doc.root();
    for i in 1..DEPTH {
        cur = doc.append_element(cur, format!("d{i}")).unwrap();
    }
    doc.append_text(cur, "bottom").unwrap();
    let xml = to_xml_string(&doc.view());
    let back = parse_document(&xml).unwrap();
    assert_eq!(back.node_count(), doc.node_count());
    assert_eq!(to_xml_string(&back.view()), xml);
}

#[test]
fn wide_documents_round_trip() {
    let mut doc = Document::new("root");
    for i in 0..5000 {
        let c = doc.append_element(doc.root(), "item").unwrap();
        doc.set_attr(c, "i", i.to_string()).unwrap();
    }
    let xml = to_xml_string(&doc.view());
    let back = parse_document(&xml).unwrap();
    assert_eq!(back.view().children(back.root()).len(), 5000);
}

#[test]
fn unicode_content_and_attributes() {
    let mut doc = Document::new("Ресурс");
    let root = doc.root();
    doc.set_attr(root, "λ", "提供-数据 🔗").unwrap();
    doc.append_text(root, "mixé 内容 with émojis 🎛️").unwrap();
    doc.register_resource(root, "weblab://docs/ünïcode", None)
        .unwrap();
    let xml = to_xml_string(&doc.view());
    let back = parse_document(&xml).unwrap();
    assert_eq!(back.view().attr(back.root(), "λ"), Some("提供-数据 🔗"));
    assert_eq!(
        back.view().uri(back.root()),
        Some("weblab://docs/ünïcode")
    );
    assert_eq!(to_xml_string(&back.view()), xml);
}

#[test]
fn entity_heavy_text_round_trips() {
    let nasty = r#"a<b&c>"d'e &amp; already-escaped"#;
    let mut doc = Document::new("t");
    doc.append_text(doc.root(), nasty).unwrap();
    doc.set_attr(doc.root(), "v", nasty).unwrap();
    let xml = to_xml_string(&doc.view());
    let back = parse_document(&xml).unwrap();
    assert_eq!(back.view().text_content(back.root()), nasty);
    assert_eq!(back.view().attr(back.root(), "v"), Some(nasty));
}

#[test]
fn metadata_suppression_strips_all_wl_attrs() {
    let mut doc = Document::new("Resource");
    let root = doc.root();
    doc.register_resource(root, "r1", Some(CallLabel::new("S", 3)))
        .unwrap();
    let opts = XmlWriteOptions {
        indent: None,
        include_meta: false,
    };
    let xml = write_with(&doc.view(), root, &opts);
    assert!(!xml.contains("wl:"));
    // with metadata, all three attributes appear
    let with = to_xml_string(&doc.view());
    for a in ["wl:id", "wl:s", "wl:t"] {
        assert!(with.contains(a), "{with}");
    }
}

#[test]
fn empty_and_minimal_documents() {
    let doc = parse_document("<a/>").unwrap();
    assert_eq!(doc.node_count(), 1);
    assert_eq!(to_xml_string(&doc.view()), "<a/>");
    let doc = parse_document("  <a></a>  ").unwrap();
    assert_eq!(to_xml_string(&doc.view()), "<a/>");
}

#[test]
fn serialising_old_states_ignores_later_registrations() {
    let mut doc = Document::new("Resource");
    let root = doc.root();
    let n = doc.append_element(root, "X").unwrap();
    let early = doc.mark();
    doc.register_resource(n, "rx", Some(CallLabel::new("S", 1)))
        .unwrap();
    let early_xml = write_with(&doc.view_at(early), root, &XmlWriteOptions::default());
    assert!(!early_xml.contains("wl:id"));
    let final_xml = to_xml_string(&doc.view());
    assert!(final_xml.contains("wl:id=\"rx\""));
}

#[test]
fn materialized_state_is_self_consistent() {
    let mut doc = Document::new("Resource");
    let root = doc.root();
    let a = doc.append_element(root, "A").unwrap();
    doc.register_resource(a, "ra", None).unwrap();
    let half = doc.mark();
    let b = doc.append_element(a, "B").unwrap();
    doc.register_resource(b, "rb", None).unwrap();

    let snap = doc.materialize_state(half);
    assert_eq!(snap.node_count(), 2);
    assert_eq!(snap.node_by_uri("ra"), Some(a));
    assert_eq!(snap.node_by_uri("rb"), None);
    // snapshot serialises identically to the live view of the same state
    assert_eq!(
        to_xml_string(&snap.view()),
        write_with(&doc.view_at(half), root, &XmlWriteOptions::default())
    );
}
